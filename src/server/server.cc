#include "server/server.h"

#include <utility>

#include "util/logging.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace dbdesign {

TuningServer::TuningServer(TuningServerOptions options)
    : options_(std::move(options)),
      store_(AtomStoreOptions{options_.cache_budget.atom_store_bytes,
                              options_.spill_dir}) {}

TuningServer::~TuningServer() = default;

Status TuningServer::RegisterSchema(const std::string& name,
                                    DbmsBackend& backend) {
  if (name.empty()) {
    return Status::InvalidArgument("schema name must not be empty");
  }
  MutexLock lock(mu_);
  if (schemas_.find(name) != schemas_.end()) {
    return Status::AlreadyExists("schema '" + name + "' already registered");
  }
  SchemaEntry& entry = schemas_[name];
  entry.backend = &backend;
  entry.fingerprint = SchemaFingerprint(backend);
  if (options_.coalesce_backend_calls) {
    entry.coalescer = std::make_unique<CostBatchCoalescer>(backend);
  }
  DBD_LOG_INFO(StrFormat("server: registered schema '%s' (fingerprint %016llx)",
                         name.c_str(),
                         static_cast<unsigned long long>(entry.fingerprint)));
  return Status::OK();
}

Status TuningServer::OpenSession(const std::string& session_id,
                                 const std::string& schema) {
  if (session_id.empty()) {
    return Status::InvalidArgument("session id must not be empty");
  }
  MutexLock lock(mu_);
  if (sessions_.find(session_id) != sessions_.end()) {
    return Status::AlreadyExists("session '" + session_id + "' already open");
  }
  auto schema_it = schemas_.find(schema);
  if (schema_it == schemas_.end()) {
    return Status::NotFound("unknown schema '" + schema + "'");
  }
  SchemaEntry& se = schema_it->second;

  auto entry = std::make_shared<SessionEntry>();
  entry->id = session_id;
  entry->schema = schema;
  {
    MutexLock session_lock(entry->mu);
    entry->designer =
        std::make_unique<Designer>(se.seam(), options_.designer);
    entry->session = std::make_unique<DesignSession>(*entry->designer);
    entry->session->SetCacheBudget(options_.cache_budget);
    if (options_.share_atoms) {
      entry->atoms = std::make_unique<AtomStoreView>(&store_, se.fingerprint);
      entry->session->SetAtomSource(entry->atoms.get());
    }
  }
  sessions_.emplace(session_id, std::move(entry));
  ++sessions_total_;
  DBD_LOG_INFO(StrFormat("server: opened session '%s' on schema '%s'",
                         session_id.c_str(), schema.c_str()));
  return Status::OK();
}

Status TuningServer::CloseSession(const std::string& session_id) {
  std::shared_ptr<SessionEntry> entry;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown session '" + session_id + "'");
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // In-flight requests hold their own reference; the state is destroyed
  // when the last one finishes. Nothing here blocks on the session lock.
  DBD_LOG_INFO("server: closed session '" + session_id + "'");
  return Status::OK();
}

std::vector<std::string> TuningServer::SessionIds() const {
  MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) ids.push_back(id);
  return ids;
}

std::vector<std::string> TuningServer::SchemaNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, entry] : schemas_) names.push_back(name);
  return names;
}

bool TuningServer::HasSession(const std::string& session_id) const {
  MutexLock lock(mu_);
  return sessions_.find(session_id) != sessions_.end();
}

std::shared_ptr<TuningServer::SessionEntry> TuningServer::FindSession(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

SessionResponse TuningServer::Execute(SessionEntry& entry,
                                      const SessionRequest& request) {
  SessionResponse response;
  response.session = entry.id;
  response.op = request.op;
  ++entry.requests;
  // Per-request tag nested inside the session tag: log lines emitted
  // by the designer stack during this request carry both.
  ScopedLogTag tag(StrFormat("session=%s req=%llu", entry.id.c_str(),
                             static_cast<unsigned long long>(entry.requests)));
  switch (request.op) {
    case SessionOp::kRecommend: {
      Result<IndexRecommendation> rec = entry.session->Recommend();
      if (rec.ok()) {
        response.recommendation = std::move(rec).value();
      } else {
        response.status = rec.status();
      }
      break;
    }
    case SessionOp::kRefine: {
      Result<IndexRecommendation> rec = entry.session->Refine(request.delta);
      if (rec.ok()) {
        response.recommendation = std::move(rec).value();
      } else {
        response.status = rec.status();
      }
      break;
    }
    case SessionOp::kPlanDeployment: {
      Result<DeploymentPlan> plan = entry.session->PlanDeployment();
      if (plan.ok()) {
        response.plan = std::move(plan).value();
      } else {
        response.status = plan.status();
      }
      break;
    }
  }
  return response;
}

std::vector<SessionResponse> TuningServer::RunBatch(
    const std::vector<SessionRequest>& requests) {
  std::vector<SessionResponse> responses(requests.size());

  // Group request indexes by session, preserving submission order both
  // across sessions (first-appearance order) and within each session.
  std::vector<std::string> order;
  std::map<std::string, std::vector<size_t>> by_session;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto [it, inserted] = by_session.try_emplace(requests[i].session);
    if (inserted) order.push_back(requests[i].session);
    it->second.push_back(i);
  }
  std::vector<std::shared_ptr<SessionEntry>> entries(order.size());
  for (size_t s = 0; s < order.size(); ++s) {
    entries[s] = FindSession(order[s]);
  }

  // Fan sessions out across the pool; each session's requests run
  // serially in order under its lock. Every response lands in its own
  // pre-sized slot, so the batch result is bit-identical to a serial
  // replay at any thread count.
  int threads = ThreadPool::Resolve(options_.num_threads);
  ThreadPool::Shared().ParallelFor(order.size(), threads, [&](size_t s) {
    const std::vector<size_t>& idxs = by_session.find(order[s])->second;
    if (entries[s] == nullptr) {
      for (size_t i : idxs) {
        responses[i].session = requests[i].session;
        responses[i].op = requests[i].op;
        responses[i].status =
            Status::NotFound("unknown session '" + requests[i].session + "'");
      }
      return;
    }
    SessionEntry& entry = *entries[s];
    MutexLock lock(entry.mu);
    ScopedLogTag tag("session=" + entry.id);
    for (size_t i : idxs) {
      responses[i] = Execute(entry, requests[i]);
    }
  });

  {
    MutexLock lock(mu_);
    requests_served_ += requests.size();
  }
  return responses;
}

Status TuningServer::WithSession(
    const std::string& session_id,
    const std::function<void(DesignSession&)>& fn) {
  std::shared_ptr<SessionEntry> found = FindSession(session_id);
  if (found == nullptr) {
    return Status::NotFound("unknown session '" + session_id + "'");
  }
  SessionEntry& entry = *found;
  {
    MutexLock lock(entry.mu);
    ScopedLogTag tag("session=" + entry.id);
    ++entry.requests;
    fn(*entry.session);
  }
  // Registry lock taken only after the session lock is released: lock
  // order is always mu_ -> entry.mu (OpenSession), never the reverse.
  MutexLock lock(mu_);
  ++requests_served_;
  return Status::OK();
}

TuningServerStats TuningServer::stats() const {
  TuningServerStats out;
  out.atoms = store_.stats();
  out.atom_hot_bytes = store_.hot_bytes();
  out.atom_peak_hot_bytes = store_.peak_hot_bytes();
  MutexLock lock(mu_);
  out.sessions_open = sessions_.size();
  out.sessions_total = sessions_total_;
  out.requests_served = requests_served_;
  for (const auto& [name, schema] : schemas_) {
    if (schema.coalescer == nullptr) continue;
    CoalescerStats cs = schema.coalescer->stats();
    out.coalescer.calls += cs.calls;
    out.coalescer.queries_in += cs.queries_in;
    out.coalescer.round_trips += cs.round_trips;
    out.coalescer.coalesced_calls += cs.coalesced_calls;
    out.coalescer.flushes += cs.flushes;
    out.coalescer.max_trip_queries =
        std::max(out.coalescer.max_trip_queries, cs.max_trip_queries);
  }
  return out;
}

Result<AtomStoreStats> TuningServer::SessionAtomStats(
    const std::string& session_id) const {
  std::shared_ptr<SessionEntry> found = FindSession(session_id);
  if (found == nullptr) {
    return Status::NotFound("unknown session '" + session_id + "'");
  }
  SessionEntry& entry = *found;
  MutexLock lock(entry.mu);
  return entry.atoms != nullptr ? entry.atoms->session_stats()
                                : AtomStoreStats{};
}

Result<uint64_t> TuningServer::SessionSchemaFingerprint(
    const std::string& session_id) const {
  std::shared_ptr<SessionEntry> found = FindSession(session_id);
  if (found == nullptr) {
    return Status::NotFound("unknown session '" + session_id + "'");
  }
  SessionEntry& entry = *found;
  std::string schema;
  {
    MutexLock lock(entry.mu);
    if (entry.atoms != nullptr) return entry.atoms->schema_fingerprint();
    schema = entry.schema;
  }
  MutexLock lock(mu_);
  auto it = schemas_.find(schema);
  if (it == schemas_.end()) {
    return Status::Internal("session '" + session_id +
                            "' bound to unregistered schema '" + schema + "'");
  }
  return it->second.fingerprint;
}

}  // namespace dbdesign
