#include "server/batcher.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dbdesign {

namespace {

/// Group key: calls are mergeable into one inner trip iff they cost
/// under the same physical design and the same planner knobs.
std::string GroupKey(const PhysicalDesign& design, const PlannerKnobs& knobs) {
  unsigned bits = 0;
  bits |= knobs.enable_seqscan ? 1u << 0 : 0;
  bits |= knobs.enable_indexscan ? 1u << 1 : 0;
  bits |= knobs.enable_indexonlyscan ? 1u << 2 : 0;
  bits |= knobs.enable_nestloop ? 1u << 3 : 0;
  bits |= knobs.enable_indexnestloop ? 1u << 4 : 0;
  bits |= knobs.enable_hashjoin ? 1u << 5 : 0;
  bits |= knobs.enable_mergejoin ? 1u << 6 : 0;
  bits |= knobs.enable_sort ? 1u << 7 : 0;
  return design.Fingerprint() + "|" + std::to_string(bits);
}

}  // namespace

Result<double> CostBatchCoalescer::CostQuery(const BoundQuery& query,
                                             const PhysicalDesign& design,
                                             const PlannerKnobs& knobs) {
  Result<std::vector<double>> costs =
      CostBatch(std::span<const BoundQuery>(&query, 1), design, knobs);
  if (!costs.ok()) return costs.status();
  return costs.value()[0];
}

Result<std::vector<double>> CostBatchCoalescer::CostBatch(
    std::span<const BoundQuery> queries, const PhysicalDesign& design,
    const PlannerKnobs& knobs) {
  if (queries.empty()) return std::vector<double>{};

  PendingCall call;
  call.queries = queries;
  call.design = &design;
  call.knobs = &knobs;
  call.group_key = GroupKey(design, knobs);

  std::vector<PendingCall*> batch;
  {
    MutexLock lock(mu_);
    queue_.push_back(&call);
    ++stats_.calls;
    stats_.queries_in += queries.size();
    // Follower: a flush is in flight; wait for it. Waking up served
    // means our call rode along; waking up unserved (we arrived after
    // the leader took the queue) means we lead the next flush.
    while (!call.done && flush_in_progress_) cv_.Wait(mu_);
    if (!call.done) {
      flush_in_progress_ = true;
      batch.swap(queue_);
    }
  }

  if (!call.done) {
    // Leader: drain the whole queue (self included) unlocked — the
    // inner backend call is the long pole and must not serialize
    // arrivals behind it.
    CoalescerStats delta = Flush(batch);
    MutexLock lock(mu_);
    stats_.round_trips += delta.round_trips;
    stats_.coalesced_calls += delta.coalesced_calls;
    stats_.flushes += delta.flushes;
    stats_.max_trip_queries =
        std::max(stats_.max_trip_queries, delta.max_trip_queries);
    for (PendingCall* p : batch) p->done = true;
    flush_in_progress_ = false;
    cv_.NotifyAll();
  }

  if (!call.status.ok()) return call.status;
  return std::move(call.costs);
}

CoalescerStats CostBatchCoalescer::Flush(
    const std::vector<PendingCall*>& batch) {
  CoalescerStats delta;
  delta.flushes = 1;

  // Group by (design, knobs); std::map keeps the grouping order
  // deterministic given the queue contents.
  std::map<std::string, std::vector<PendingCall*>> groups;
  for (PendingCall* p : batch) groups[p->group_key].push_back(p);

  for (auto& [key, calls] : groups) {
    std::vector<BoundQuery> combined;
    size_t total = 0;
    for (const PendingCall* p : calls) total += p->queries.size();
    combined.reserve(total);
    for (const PendingCall* p : calls) {
      combined.insert(combined.end(), p->queries.begin(), p->queries.end());
    }

    Result<std::vector<double>> costs = inner_->CostBatch(
        std::span<const BoundQuery>(combined.data(), combined.size()),
        *calls.front()->design, *calls.front()->knobs);
    ++delta.round_trips;
    delta.max_trip_queries = std::max(delta.max_trip_queries,
                                      static_cast<uint64_t>(combined.size()));
    if (calls.size() > 1) delta.coalesced_calls += calls.size();

    if (!costs.ok()) {
      // The whole trip failed (the resilience layer below already
      // retried); every rider sees the same honest Status — exactly
      // what each would have seen calling alone.
      for (PendingCall* p : calls) p->status = costs.status();
      continue;
    }
    size_t offset = 0;
    for (PendingCall* p : calls) {
      p->costs.assign(costs.value().begin() + static_cast<ptrdiff_t>(offset),
                      costs.value().begin() +
                          static_cast<ptrdiff_t>(offset + p->queries.size()));
      offset += p->queries.size();
    }
  }
  return delta;
}

CoalescerStats CostBatchCoalescer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void CostBatchCoalescer::ResetStats() {
  MutexLock lock(mu_);
  stats_ = CoalescerStats{};
}

}  // namespace dbdesign
