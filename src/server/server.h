// TuningServer: concurrent DesignSessions over a shared atom substrate.
//
// The paper frames the designer as an always-available advisor; this
// is the service layer that multiplexes many advisors. A TuningServer
// owns a registry of named schemas (DbmsBackend seams) and of
// DesignSessions keyed by session id, and schedules session requests
// over the shared util/thread_pool. Three structural pieces make
// multi-tenancy cheap and safe:
//
//   * AtomStore (server/atom_store.h) — sessions tuning the same
//     schema share INUM populates: atom rows are published under
//     (schema fingerprint, SQL text, universe fingerprint) and adopted
//     by shared_ptr, so the Nth session on a warm schema skips the
//     expensive half of its first Recommend.
//   * Copy-on-write session state — CoPhyPrepared holds immutable
//     shared rows; a Refine/PlanDeployment that changes one session's
//     universe builds *new* rows and never touches rows other sessions
//     hold, so their Recommends proceed from unchanged state. Sessions
//     synchronize only on the store's short registry/lookup critical
//     sections, never on each other's solves.
//   * CostBatchCoalescer (server/batcher.h) — per schema, concurrent
//     cold sessions' backend cost calls coalesce into shared seam
//     round-trips, layered above whatever resilience decorator the
//     registered backend carries.
//
// Determinism contract: each session's requests execute serially in
// submission order under the session's own Mutex; every value a request
// reads from shared state (atom rows, coalesced costs) is bit-identical
// to what the session would have computed alone. RunBatch results are
// therefore bit-identical to a serial replay of the same requests at
// any thread count. Only counters (hit rates, coalescing stats) are
// timing-dependent.

#ifndef DBDESIGN_SERVER_SERVER_H_
#define DBDESIGN_SERVER_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/designer.h"
#include "core/session.h"
#include "server/atom_store.h"
#include "server/batcher.h"
#include "util/cache_budget.h"
#include "util/thread_annotations.h"

namespace dbdesign {

struct TuningServerOptions {
  /// Per-session Designer configuration (cost model, CoPhy, DoI ...).
  DesignerOptions designer;
  /// Cross-session atom sharing via the AtomStore. Off = every session
  /// populates alone (results identical either way).
  bool share_atoms = true;
  /// Per-schema CostBatchCoalescer over the registered backend seam.
  bool coalesce_backend_calls = true;
  /// Parallelism for RunBatch across sessions (0 = hardware).
  int num_threads = 0;
  /// Memory budget for every cache tier: atom_store_bytes bounds the
  /// shared store's hot rows, doi_rows_bytes / solver_cache_bytes are
  /// applied to each session on open. Zero fields (the default) are
  /// unbounded — the pre-budget behavior. Results are bit-identical at
  /// any budget; only eviction/recompute work varies.
  CacheBudget cache_budget;
  /// Cold-tier directory for evicted atom rows (see AtomStoreOptions::
  /// spill_dir). Empty = no spilling: an evicted row is rebuilt by the
  /// next session that needs it.
  std::string spill_dir;
};

enum class SessionOp {
  kRecommend,
  kRefine,
  kPlanDeployment,
};

struct SessionRequest {
  std::string session;
  SessionOp op = SessionOp::kRecommend;
  /// Constraint edit for kRefine (ignored otherwise).
  ConstraintDelta delta;
};

struct SessionResponse {
  std::string session;
  SessionOp op = SessionOp::kRecommend;
  Status status;
  /// Set on successful kRecommend / kRefine.
  std::optional<IndexRecommendation> recommendation;
  /// Set on successful kPlanDeployment.
  std::optional<DeploymentPlan> plan;
};

/// Server-wide telemetry snapshot.
struct TuningServerStats {
  AtomStoreStats atoms;    ///< shared-store counters (all schemas)
  /// Current / high-water hot bytes in the shared store (the gauge the
  /// atom_store_bytes budget bounds).
  size_t atom_hot_bytes = 0;
  size_t atom_peak_hot_bytes = 0;
  uint64_t sessions_open = 0;
  uint64_t sessions_total = 0;  ///< ever opened
  uint64_t requests_served = 0;
  /// Summed coalescer counters across schemas (zeros when coalescing
  /// is disabled).
  CoalescerStats coalescer;
};

class TuningServer {
 public:
  explicit TuningServer(TuningServerOptions options = {});
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  // --- Registry ---
  /// Registers a schema substrate under `name`. The backend must
  /// outlive the server; sessions opened on this schema talk to it
  /// through the server's per-schema coalescer (when enabled).
  Status RegisterSchema(const std::string& name, DbmsBackend& backend);

  /// Opens a session on a registered schema. Fails if the id is taken
  /// or the schema unknown.
  Status OpenSession(const std::string& session_id,
                     const std::string& schema);

  /// Removes the session from the registry. Safe concurrently with a
  /// running batch: in-flight requests on the session complete (the
  /// entry is reference-counted) and the state is destroyed afterwards.
  Status CloseSession(const std::string& session_id);

  std::vector<std::string> SessionIds() const;
  std::vector<std::string> SchemaNames() const;
  bool HasSession(const std::string& session_id) const;

  // --- Requests ---
  /// Executes a batch of session requests: requests for the same
  /// session run serially in submission order under that session's
  /// lock; distinct sessions fan out across the thread pool. Responses
  /// come back in request order. Unknown sessions get kNotFound
  /// responses; the batch always completes.
  std::vector<SessionResponse> RunBatch(
      const std::vector<SessionRequest>& requests);

  /// Serialized, tagged access to one session for embedders (the CLI's
  /// multi-session mode, tests, benches): runs `fn` under the session's
  /// lock with its log tag installed. Blocks while the session serves
  /// other requests.
  Status WithSession(const std::string& session_id,
                     const std::function<void(DesignSession&)>& fn);

  // --- Telemetry ---
  TuningServerStats stats() const;
  /// Per-session atom counters (hits = populates this session skipped).
  Result<AtomStoreStats> SessionAtomStats(const std::string& session_id) const;
  /// The schema fingerprint a session is bound to (exposed for tests).
  Result<uint64_t> SessionSchemaFingerprint(
      const std::string& session_id) const;
  const AtomStore& atom_store() const { return store_; }

 private:
  struct SchemaEntry {
    DbmsBackend* backend = nullptr;  ///< as registered (non-owning)
    /// Coalescing seam sessions actually talk to (null when disabled).
    std::unique_ptr<CostBatchCoalescer> coalescer;
    uint64_t fingerprint = 0;

    DbmsBackend& seam() {
      return coalescer != nullptr ? *coalescer : *backend;
    }
  };

  /// One open session. `mu` serializes the session's requests; the
  /// registry lock is never held while a request executes, so slow
  /// solves on one session never block another session's requests —
  /// nor opens/closes.
  struct SessionEntry {
    std::string id;
    std::string schema;
    Mutex mu;
    std::unique_ptr<AtomStoreView> atoms DBD_GUARDED_BY(mu);  // may be null
    std::unique_ptr<Designer> designer DBD_GUARDED_BY(mu);
    std::unique_ptr<DesignSession> session DBD_GUARDED_BY(mu);
    uint64_t requests DBD_GUARDED_BY(mu) = 0;
  };

  /// Executes one request on a locked session entry.
  SessionResponse Execute(SessionEntry& entry, const SessionRequest& request)
      DBD_REQUIRES(entry.mu);

  /// Looks up a session entry (shared ownership keeps it alive past a
  /// concurrent CloseSession).
  std::shared_ptr<SessionEntry> FindSession(const std::string& id) const;

  const TuningServerOptions options_;
  AtomStore store_;

  mutable Mutex mu_;
  /// Declared before sessions_ so sessions (which reference schema
  /// seams) are destroyed first on teardown.
  std::map<std::string, SchemaEntry> schemas_ DBD_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_
      DBD_GUARDED_BY(mu_);
  uint64_t sessions_total_ DBD_GUARDED_BY(mu_) = 0;
  uint64_t requests_served_ DBD_GUARDED_BY(mu_) = 0;
};

}  // namespace dbdesign

#endif  // DBDESIGN_SERVER_SERVER_H_
