#include "server/atom_store.h"

#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "catalog/stats.h"
#include "cophy/atom_codec.h"
#include "util/binio.h"
#include "util/logging.h"
#include "util/str.h"

namespace dbdesign {

namespace {

/// Incremental FNV-1a (the repo's standard non-cryptographic hash).
class Fnv {
 public:
  void MixBytes(const std::string& s) {
    // Length prefix so adjacent fields cannot alias across the
    // concatenation ("ab" + "c" vs "a" + "bc").
    MixU64(s.size());
    for (char c : s) MixByte(static_cast<unsigned char>(c));
  }
  void MixU64(uint64_t v) {
    for (int b = 0; b < 8; ++b) MixByte((v >> (8 * b)) & 0xff);
  }
  void MixDouble(double v) { MixU64(std::bit_cast<uint64_t>(v)); }
  void MixInt(int v) { MixU64(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  uint64_t digest() const { return h_; }

 private:
  void MixByte(uint64_t byte) {
    h_ ^= byte;
    h_ *= 1099511628211ull;
  }
  uint64_t h_ = 1469598103934665603ull;
};

// Spill-file header: "DBAS" little-endian (DBdesign Atom Spill) + a
// format version + the FULL composite key. Files are NAMED by a hash
// of the key, so the reload path must verify the embedded key before
// trusting the payload — a filename collision then degrades to a
// reload failure (miss + repopulate), never to another key's row.
constexpr uint32_t kSpillMagic = 0x53414244u;
constexpr uint32_t kSpillVersion = 1;

}  // namespace

uint64_t SchemaFingerprint(const DbmsBackend& backend) {
  Fnv fnv;

  const Catalog& catalog = backend.catalog();
  fnv.MixInt(catalog.num_tables());
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& table = catalog.table(t);
    fnv.MixBytes(table.name());
    fnv.MixInt(table.num_columns());
    for (const ColumnDef& col : table.columns()) {
      fnv.MixBytes(col.name);
      fnv.MixInt(static_cast<int>(col.type));
      fnv.MixInt(col.Width());
    }
  }

  // Statistics summary: everything selectivity and IO estimation read.
  // Histogram bounds and MCV values/frequencies are mixed in full:
  // selectivity estimation walks them value by value, so two substrates
  // that differ ONLY in histogram interiors (equal resolution, equal
  // extrema — e.g. the same schema before and after a skewed data load)
  // cost queries differently and must never share atom rows. Size +
  // extrema summaries let exactly that pair collide.
  for (const TableStats& stats : backend.all_stats()) {
    fnv.MixDouble(stats.row_count);
    fnv.MixInt(static_cast<int>(stats.columns.size()));
    for (const ColumnStats& col : stats.columns) {
      fnv.MixDouble(col.n_distinct);
      fnv.MixDouble(col.null_frac);
      fnv.MixDouble(col.correlation);
      fnv.MixInt(static_cast<int>(col.histogram.size()));
      for (const Value& bound : col.histogram) {
        fnv.MixBytes(bound.ToString());
      }
      fnv.MixInt(static_cast<int>(col.mcv.size()));
      for (const McvEntry& entry : col.mcv) {
        fnv.MixBytes(entry.value.ToString());
        fnv.MixDouble(entry.frequency);
      }
      fnv.MixBytes(col.min.ToString());
      fnv.MixBytes(col.max.ToString());
    }
  }

  const CostParams& p = backend.cost_params();
  fnv.MixDouble(p.seq_page_cost);
  fnv.MixDouble(p.random_page_cost);
  fnv.MixDouble(p.cpu_tuple_cost);
  fnv.MixDouble(p.cpu_index_tuple_cost);
  fnv.MixDouble(p.cpu_operator_cost);
  fnv.MixDouble(p.effective_cache_size_pages);
  fnv.MixDouble(p.work_mem_bytes);
  fnv.MixDouble(p.min_rows);
  // num_threads is deliberately excluded: it trades wall time only,
  // results are bit-identical at any setting.

  return fnv.digest();
}

AtomStore::AtomStore(AtomStoreOptions options) : options_(std::move(options)) {
  if (options_.spill_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  if (ec) {
    DBD_LOG_WARN(StrFormat(
        "atom store: cannot create spill dir '%s' (%s); running without "
        "a cold tier — evictions will drop rows outright",
        options_.spill_dir.c_str(), ec.message().c_str()));
    return;
  }
  spill_enabled_ = true;
}

AtomStore::~AtomStore() {
  MutexLock lock(mu_);
  RemoveSpillFiles();
  if (spill_enabled_) {
    // Best-effort: removes the directory only when empty (it may be
    // shared with another store or hold unrelated files).
    std::error_code ec;
    std::filesystem::remove(options_.spill_dir, ec);
  }
}

std::string AtomStore::SpillPath(const Key& key) const {
  Fnv fnv;
  fnv.MixU64(std::get<0>(key));
  fnv.MixBytes(std::get<1>(key));
  fnv.MixU64(std::get<2>(key));
  return options_.spill_dir +
         StrFormat("/atoms-%016llx.bin",
                   static_cast<unsigned long long>(fnv.digest()));
}

bool AtomStore::WriteSpill(const Key& key, const CoPhyAtomRow& row) {
  BinaryWriter w;
  w.PutU32(kSpillMagic);
  w.PutU32(kSpillVersion);
  w.PutU64(std::get<0>(key));
  w.PutU64(std::get<2>(key));
  w.PutString(std::get<1>(key));
  w.PutString(EncodeAtomRow(row));
  std::ofstream out(SpillPath(key), std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  const std::string& bytes = w.bytes();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return out.good();
}

std::shared_ptr<const CoPhyAtomRow> AtomStore::TryReload(const Key& key) {
  std::ifstream in(SpillPath(key), std::ios::binary);
  if (!in.is_open()) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return nullptr;
  std::string bytes = std::move(buf).str();

  BinaryReader r(bytes);
  if (r.U32() != kSpillMagic || r.U32() != kSpillVersion) return nullptr;
  uint64_t schema = r.U64();
  uint64_t universe = r.U64();
  std::string sql = r.String();
  if (!r.ok() || schema != std::get<0>(key) ||
      universe != std::get<2>(key) || sql != std::get<1>(key)) {
    // Wrong key: a filename-hash collision overwrote this file (or the
    // file is corrupt). Treated as unreadable.
    return nullptr;
  }
  Result<CoPhyAtomRow> row = DecodeAtomRow(r.String());
  if (!r.ok() || !r.AtEnd() || !row.ok()) return nullptr;
  return std::make_shared<const CoPhyAtomRow>(std::move(row).value());
}

void AtomStore::Touch(const Key& key, Entry& entry) {
  if (entry.lru != 0) lru_order_.erase(entry.lru);
  entry.lru = ++lru_tick_;
  lru_order_.emplace(entry.lru, key);
}

void AtomStore::AddHot(const Key& key, Entry& entry,
                       std::shared_ptr<const CoPhyAtomRow> row) {
  entry.bytes = AtomRowBytes(*row);
  entry.row = std::move(row);
  hot_bytes_ += entry.bytes;
  Touch(key, entry);
}

void AtomStore::EvictToBudget() {
  if (options_.budget_bytes == 0) {
    if (hot_bytes_ > peak_hot_bytes_) peak_hot_bytes_ = hot_bytes_;
    return;
  }
  while (hot_bytes_ > options_.budget_bytes && !lru_order_.empty()) {
    auto lru_it = lru_order_.begin();
    auto it = rows_.find(lru_it->second);
    DBD_DCHECK(it != rows_.end());
    Entry& entry = it->second;
    ++stats_.evictions;
    if (spill_enabled_ && !entry.on_disk) {
      // First eviction writes the cold copy; rows are immutable, so a
      // reload-then-re-evict cycle never rewrites the file. A write
      // failure leaves the entry cold-tier-less and it is dropped
      // below — the next lookup misses and the session repopulates.
      if (WriteSpill(it->first, *entry.row)) {
        entry.on_disk = true;
        ++stats_.spills;
      }
    }
    hot_bytes_ -= entry.bytes;
    entry.bytes = 0;
    entry.row.reset();
    entry.lru = 0;
    lru_order_.erase(lru_it);
    if (!entry.on_disk) rows_.erase(it);
  }
  // The bench-enforced bound: hot bytes never exceed the budget after
  // any mutation. (Every hot entry is in lru_order_, so the loop can
  // always drain hot_bytes_ to zero — even a single row larger than
  // the whole budget evicts itself; its caller still holds the
  // shared_ptr.)
  DBD_CHECK(hot_bytes_ <= options_.budget_bytes);
  // Peak is recorded AFTER evicting, so it tracks the externally
  // observable gauge: on a bounded store, peak <= budget always (the
  // transient AddHot overshoot inside this critical section is never
  // visible through hot_bytes()).
  if (hot_bytes_ > peak_hot_bytes_) peak_hot_bytes_ = hot_bytes_;
}

std::shared_ptr<const CoPhyAtomRow> AtomStore::Lookup(
    uint64_t schema_fingerprint, const std::string& sql_key,
    uint64_t universe_fingerprint) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  Key key(schema_fingerprint, sql_key, universe_fingerprint);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.row != nullptr) {
    ++stats_.hits;
    Touch(key, entry);
    return entry.row;
  }
  // Cold tier: reload, promote to hot, re-evict to budget. The local
  // copy is returned even if the promotion immediately evicts it again
  // (budget smaller than this one row).
  std::shared_ptr<const CoPhyAtomRow> row = TryReload(key);
  if (row == nullptr) {
    ++stats_.reload_failures;
    ++stats_.misses;
    std::error_code ec;
    std::filesystem::remove(SpillPath(key), ec);
    rows_.erase(it);
    return nullptr;
  }
  ++stats_.reloads;
  ++stats_.hits;
  AddHot(key, entry, row);
  EvictToBudget();
  return row;
}

std::shared_ptr<const CoPhyAtomRow> AtomStore::Publish(
    uint64_t schema_fingerprint, const std::string& sql_key,
    uint64_t universe_fingerprint, std::shared_ptr<const CoPhyAtomRow> row) {
  MutexLock lock(mu_);
  Key key(schema_fingerprint, sql_key, universe_fingerprint);
  auto it = rows_.find(key);
  if (it != rows_.end()) {
    // Two sessions built the same row concurrently; the first write is
    // canonical and the duplicate is dropped so every holder shares
    // one object.
    Entry& entry = it->second;
    if (entry.row != nullptr) {
      ++stats_.races_discarded;
      Touch(key, entry);
      return entry.row;
    }
    // The canonical row was already evicted to the cold tier (the
    // publisher raced an eviction). Reload it so both holders still
    // converge on one object; if the spill is unreadable, fall through
    // and let the freshly built row take over the entry.
    std::shared_ptr<const CoPhyAtomRow> stored = TryReload(key);
    if (stored != nullptr) {
      ++stats_.races_discarded;
      ++stats_.reloads;
      AddHot(key, entry, stored);
      EvictToBudget();
      return stored;
    }
    ++stats_.reload_failures;
    std::error_code ec;
    std::filesystem::remove(SpillPath(key), ec);
    entry.on_disk = false;
  } else {
    it = rows_.emplace(key, Entry{}).first;
  }
  std::shared_ptr<const CoPhyAtomRow> canonical = std::move(row);
  AddHot(key, it->second, canonical);
  ++stats_.publishes;
  if (!seen_queries_.emplace(schema_fingerprint, sql_key).second) {
    // Same (schema, query) published before under another universe —
    // or its entry was evicted without a reloadable spill copy. Either
    // way the populate was paid again.
    ++stats_.repopulates;
  }
  EvictToBudget();
  return canonical;
}

AtomStoreStats AtomStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t AtomStore::entries() const {
  MutexLock lock(mu_);
  return rows_.size();
}

size_t AtomStore::hot_entries() const {
  MutexLock lock(mu_);
  return lru_order_.size();
}

size_t AtomStore::hot_bytes() const {
  MutexLock lock(mu_);
  return hot_bytes_;
}

size_t AtomStore::peak_hot_bytes() const {
  MutexLock lock(mu_);
  return peak_hot_bytes_;
}

void AtomStore::RemoveSpillFiles() {
  for (const auto& [key, entry] : rows_) {
    if (!entry.on_disk) continue;
    std::error_code ec;
    std::filesystem::remove(SpillPath(key), ec);
  }
}

void AtomStore::Clear() {
  MutexLock lock(mu_);
  RemoveSpillFiles();
  rows_.clear();
  lru_order_.clear();
  seen_queries_.clear();
  lru_tick_ = 0;
  hot_bytes_ = 0;
  peak_hot_bytes_ = 0;
  // Counters reset with the entries: a cleared store is a fresh store,
  // and a hit_rate() mixing pre- and post-clear epochs would misreport
  // (the old bug: stale lookups/hits surviving into the new epoch).
  stats_ = AtomStoreStats{};
}

}  // namespace dbdesign
