#include "server/atom_store.h"

#include <bit>

#include "catalog/stats.h"

namespace dbdesign {

namespace {

/// Incremental FNV-1a (the repo's standard non-cryptographic hash).
class Fnv {
 public:
  void MixBytes(const std::string& s) {
    // Length prefix so adjacent fields cannot alias across the
    // concatenation ("ab" + "c" vs "a" + "bc").
    MixU64(s.size());
    for (char c : s) MixByte(static_cast<unsigned char>(c));
  }
  void MixU64(uint64_t v) {
    for (int b = 0; b < 8; ++b) MixByte((v >> (8 * b)) & 0xff);
  }
  void MixDouble(double v) { MixU64(std::bit_cast<uint64_t>(v)); }
  void MixInt(int v) { MixU64(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  uint64_t digest() const { return h_; }

 private:
  void MixByte(uint64_t byte) {
    h_ ^= byte;
    h_ *= 1099511628211ull;
  }
  uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

uint64_t SchemaFingerprint(const DbmsBackend& backend) {
  Fnv fnv;

  const Catalog& catalog = backend.catalog();
  fnv.MixInt(catalog.num_tables());
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& table = catalog.table(t);
    fnv.MixBytes(table.name());
    fnv.MixInt(table.num_columns());
    for (const ColumnDef& col : table.columns()) {
      fnv.MixBytes(col.name);
      fnv.MixInt(static_cast<int>(col.type));
      fnv.MixInt(col.Width());
    }
  }

  // Statistics summary: everything selectivity and IO estimation read.
  // Histogram/MCV contents are summarized by resolution + extrema —
  // they are derived deterministically from the same data generation
  // inputs that set row counts and NDVs, so the summary separates every
  // substrate the test/bench schemas can actually produce while keeping
  // the fingerprint cheap.
  for (const TableStats& stats : backend.all_stats()) {
    fnv.MixDouble(stats.row_count);
    fnv.MixInt(static_cast<int>(stats.columns.size()));
    for (const ColumnStats& col : stats.columns) {
      fnv.MixDouble(col.n_distinct);
      fnv.MixDouble(col.null_frac);
      fnv.MixDouble(col.correlation);
      fnv.MixInt(static_cast<int>(col.histogram.size()));
      fnv.MixInt(static_cast<int>(col.mcv.size()));
      fnv.MixBytes(col.min.ToString());
      fnv.MixBytes(col.max.ToString());
    }
  }

  const CostParams& p = backend.cost_params();
  fnv.MixDouble(p.seq_page_cost);
  fnv.MixDouble(p.random_page_cost);
  fnv.MixDouble(p.cpu_tuple_cost);
  fnv.MixDouble(p.cpu_index_tuple_cost);
  fnv.MixDouble(p.cpu_operator_cost);
  fnv.MixDouble(p.effective_cache_size_pages);
  fnv.MixDouble(p.work_mem_bytes);
  fnv.MixDouble(p.min_rows);
  // num_threads is deliberately excluded: it trades wall time only,
  // results are bit-identical at any setting.

  return fnv.digest();
}

std::shared_ptr<const CoPhyAtomRow> AtomStore::Lookup(
    uint64_t schema_fingerprint, const std::string& sql_key,
    uint64_t universe_fingerprint) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  auto it = rows_.find(Key(schema_fingerprint, sql_key, universe_fingerprint));
  if (it == rows_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const CoPhyAtomRow> AtomStore::Publish(
    uint64_t schema_fingerprint, const std::string& sql_key,
    uint64_t universe_fingerprint, std::shared_ptr<const CoPhyAtomRow> row) {
  MutexLock lock(mu_);
  auto [it, inserted] = rows_.try_emplace(
      Key(schema_fingerprint, sql_key, universe_fingerprint), std::move(row));
  if (!inserted) {
    // Two sessions built the same row concurrently; the first write is
    // canonical and the duplicate is dropped so every holder shares
    // one object.
    ++stats_.races_discarded;
    return it->second;
  }
  ++stats_.publishes;
  if (!seen_queries_.emplace(schema_fingerprint, sql_key).second) {
    ++stats_.repopulates;
  }
  return it->second;
}

AtomStoreStats AtomStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t AtomStore::entries() const {
  MutexLock lock(mu_);
  return rows_.size();
}

void AtomStore::Clear() {
  MutexLock lock(mu_);
  rows_.clear();
  seen_queries_.clear();
}

}  // namespace dbdesign
