// Differential tests for cluster-decomposed BIP solving: for every
// synthetic workload and constraint mix, SolvePrepared in kAuto mode
// (decomposed, cached, warm-started) must return a recommendation
// bit-identical to a forced monolithic solve of the same problem —
// indexes, total size, per-query costs and recommended cost compared
// with exact double equality. The 1e-5/page tie-break makes the BIP
// optimum unique, which is what licenses the exact comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "cophy/cophy.h"
#include "core/constraints.h"
#include "util/rng.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class DecompTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 800;
    cfg.seed = 3;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* DecompTest::db_ = nullptr;

// Enumerates structurally valid, distinct IndexDefs over the catalog
// (single-column first, then leading pairs) — enough to name synthetic
// candidates without caring what the columns mean.
std::vector<IndexDef> EnumerateIndexDefs(const Catalog& catalog, int count) {
  std::vector<IndexDef> defs;
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    for (ColumnId c = 0;
         c < static_cast<ColumnId>(catalog.table(t).columns().size()); ++c) {
      defs.push_back(IndexDef{t, {c}});
      if (static_cast<int>(defs.size()) == count) return defs;
    }
  }
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    ColumnId nc = static_cast<ColumnId>(catalog.table(t).columns().size());
    for (ColumnId a = 0; a < nc; ++a) {
      for (ColumnId b = 0; b < nc; ++b) {
        if (a == b) continue;
        defs.push_back(IndexDef{t, {a, b}});
        if (static_cast<int>(defs.size()) == count) return defs;
      }
    }
  }
  return defs;
}

struct PreparedSpec {
  uint64_t seed = 1;
  int num_groups = 4;        ///< independent candidate groups
  int cands_per_group = 4;   ///< candidates per group
  int rows_per_group = 3;    ///< query rows confined to one group
  int cross_rows = 0;        ///< rows straddling two groups (merges them)
  int free_rows = 1;         ///< rows with only the index-free atom
};

// Builds a synthetic prepared state whose cluster structure is exactly
// the group structure: each row's atoms reference only its group's
// candidates (plus the index-free anchor), so PartitionFromEdges yields
// one cluster per group unless cross_rows merge some.
CoPhyPrepared MakePrepared(const Database& db, const PreparedSpec& spec) {
  Rng rng(spec.seed);
  int ny = spec.num_groups * spec.cands_per_group;
  std::vector<IndexDef> defs = EnumerateIndexDefs(db.catalog(), ny);
  EXPECT_EQ(static_cast<int>(defs.size()), ny) << "catalog too small";

  CoPhyPrepared prep;
  for (int i = 0; i < ny; ++i) {
    CandidateIndex c;
    c.index = defs[static_cast<size_t>(i)];
    c.size_pages = rng.UniformDouble(50.0, 400.0);
    c.relevant_queries = 1;
    prep.candidates.push_back(std::move(c));
  }
  prep.universe_fingerprint = CandidateUniverseFingerprint(prep.candidates);

  auto add_row = [&](const std::vector<int>& group_cands, double weight) {
    auto row = std::make_shared<CoPhyAtomRow>();
    double base = rng.UniformDouble(80.0, 160.0);
    row->base_cost = base;
    row->atoms.push_back(CoPhyAtom{base, {}});  // index-free anchor
    for (int i : group_cands) {
      row->atoms.push_back(CoPhyAtom{base * rng.UniformDouble(0.3, 0.95), {i}});
    }
    // A few pair atoms: cheaper than either single, coupling the pair.
    for (size_t t = 0; t + 1 < group_cands.size(); t += 2) {
      std::vector<int> used = {group_cands[t], group_cands[t + 1]};
      std::sort(used.begin(), used.end());
      row->atoms.push_back(
          CoPhyAtom{base * rng.UniformDouble(0.15, 0.4), std::move(used)});
    }
    std::sort(row->atoms.begin(), row->atoms.end(),
              [](const CoPhyAtom& a, const CoPhyAtom& b) {
                return a.cost < b.cost;
              });
    prep.num_atoms += row->atoms.size();
    prep.rows.push_back(std::move(row));
    prep.weights.push_back(weight);
    prep.base_cost += weight * base;
  };

  for (int g = 0; g < spec.num_groups; ++g) {
    std::vector<int> members;
    for (int j = 0; j < spec.cands_per_group; ++j) {
      members.push_back(g * spec.cands_per_group + j);
    }
    for (int r = 0; r < spec.rows_per_group; ++r) {
      add_row(members, rng.UniformDouble(0.5, 2.0));
    }
  }
  for (int r = 0; r < spec.cross_rows; ++r) {
    // Straddle two adjacent groups (rotating), merging their clusters.
    int g = r % std::max(1, spec.num_groups - 1);
    std::vector<int> members = {g * spec.cands_per_group,
                                (g + 1) * spec.cands_per_group};
    add_row(members, rng.UniformDouble(0.5, 2.0));
  }
  for (int r = 0; r < spec.free_rows; ++r) {
    add_row({}, rng.UniformDouble(0.5, 2.0));  // row_cluster == -1
  }
  prep.RefreshClusters();
  return prep;
}

IndexRecommendation Solve(const Database& db, const CoPhyPrepared& prep,
                          const DesignConstraints& cons, CoPhySolveMode mode,
                          double budget_pages,
                          CoPhySolverCache* cache = nullptr) {
  CoPhyOptions opts;
  opts.storage_budget_pages = budget_pages;
  opts.solve_mode = mode;
  CoPhyAdvisor advisor(db, CostParams{}, opts);
  Result<IndexRecommendation> rec = advisor.SolvePrepared(prep, cons, cache);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  return std::move(rec).value();
}

// The bit-identity contract: everything derived from the chosen y set
// must match EXACTLY (not approximately) between the two solve paths.
// Telemetry (lower_bound, gap, node/pivot counts) may differ.
void ExpectBitIdentical(const IndexRecommendation& a,
                        const IndexRecommendation& b) {
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_TRUE(a.indexes[i] == b.indexes[i]) << "index " << i;
  }
  EXPECT_EQ(a.total_size_pages, b.total_size_pages);
  EXPECT_EQ(a.recommended_cost, b.recommended_cost);
  ASSERT_EQ(a.per_query_cost.size(), b.per_query_cost.size());
  for (size_t q = 0; q < a.per_query_cost.size(); ++q) {
    EXPECT_EQ(a.per_query_cost[q], b.per_query_cost[q]) << "query " << q;
  }
  EXPECT_EQ(a.infeasible_pins.size(), b.infeasible_pins.size());
  // Both paths prove optimality (decomposed falls back when it cannot).
  EXPECT_EQ(a.proven_optimal, b.proven_optimal);
  EXPECT_NEAR(a.lower_bound, b.lower_bound,
              1e-6 * std::max(1.0, std::abs(a.lower_bound)));
}

double TotalSize(const CoPhyPrepared& prep) {
  double total = 0.0;
  for (const CandidateIndex& c : prep.candidates) total += c.size_pages;
  return total;
}

TEST_F(DecompTest, UnconstrainedMatchesMonolithicAcrossSeeds) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    PreparedSpec spec;
    spec.seed = seed;
    CoPhyPrepared prep = MakePrepared(*db_, spec);
    ASSERT_GE(prep.clusters.num_clusters(), spec.num_groups);
    DesignConstraints cons;
    double budget = TotalSize(prep);  // generous: clusters never compete
    IndexRecommendation mono =
        Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
    IndexRecommendation decomp =
        Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
    EXPECT_TRUE(mono.solved_monolithic);
    EXPECT_FALSE(decomp.solved_monolithic)
        << "seed " << seed << ": generous budget must not fall back";
    EXPECT_EQ(decomp.clusters_solved, spec.num_groups);
    ExpectBitIdentical(decomp, mono);
  }
}

TEST_F(DecompTest, ConstraintMixesMatchMonolithic) {
  for (uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    PreparedSpec spec;
    spec.seed = seed;
    spec.num_groups = 3;
    spec.cands_per_group = 5;
    CoPhyPrepared prep = MakePrepared(*db_, spec);
    double budget = TotalSize(prep);

    // Pins (one per group boundary), vetoes, and per-table caps at once.
    DesignConstraints cons;
    cons.pinned_indexes.push_back(prep.candidates[0].index);
    cons.pinned_indexes.push_back(
        prep.candidates[static_cast<size_t>(spec.cands_per_group)].index);
    cons.vetoed_indexes.push_back(prep.candidates[1].index);
    cons.vetoed_indexes.push_back(
        prep.candidates[prep.candidates.size() - 1].index);
    for (const CandidateIndex& c : prep.candidates) {
      cons.max_indexes_per_table[c.index.table] = 4;
    }
    ASSERT_TRUE(cons.Validate(db_->catalog()).ok());

    IndexRecommendation mono =
        Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
    IndexRecommendation decomp =
        Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
    ExpectBitIdentical(decomp, mono);
  }
}

TEST_F(DecompTest, TightBudgetStraddlingClustersArbitratedExactly) {
  PreparedSpec spec;
  spec.seed = 21;
  CoPhyPrepared prep = MakePrepared(*db_, spec);
  // Pick a budget each of the two cheapest clusters can afford alone
  // but not together: both want to build (every single-index atom beats
  // the index-free anchor by far more than the tie-break), so the
  // budget genuinely binds ACROSS clusters. The allocation DP must
  // arbitrate the split over per-cluster frontiers — staying decomposed
  // — and still land on the exact monolithic optimum.
  std::vector<double> cluster_min;
  for (const std::vector<int>& ck : prep.clusters.clusters) {
    double m = std::numeric_limits<double>::infinity();
    for (int i : ck) {
      m = std::min(m, prep.candidates[static_cast<size_t>(i)].size_pages);
    }
    cluster_min.push_back(m);
  }
  std::sort(cluster_min.begin(), cluster_min.end());
  ASSERT_GE(cluster_min.size(), 2u);
  double straddle = (cluster_min[0] + cluster_min[1]) * 0.95;
  ASSERT_GE(straddle, cluster_min[1]);  // both clusters can afford theirs

  DesignConstraints cons;
  for (double budget :
       {straddle, cluster_min[0] * 1.05, TotalSize(prep) * 0.5}) {
    IndexRecommendation mono =
        Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
    IndexRecommendation decomp =
        Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
    ExpectBitIdentical(decomp, mono);
  }
  IndexRecommendation straddled =
      Solve(*db_, prep, cons, CoPhySolveMode::kAuto, straddle);
  EXPECT_FALSE(straddled.solved_monolithic)
      << "a binding cross-cluster budget must be arbitrated by the "
         "allocation DP, not punted to the monolithic fallback";
}

TEST_F(DecompTest, CapStraddlingClustersFallsBackAndMatches) {
  // Per-table caps are the one coupling the decomposition only relaxes:
  // each cluster solves under the FULL cap. All candidates here are
  // single-column indexes on the same table, so a cap of 1 binds across
  // every cluster at once; each per-cluster optimum builds its best
  // index, the stitched union overshoots the cap, and the solver must
  // detect the violation and arbitrate via the monolithic fallback.
  PreparedSpec spec;
  spec.seed = 22;
  CoPhyPrepared prep = MakePrepared(*db_, spec);
  for (const CandidateIndex& c : prep.candidates) {
    ASSERT_EQ(c.index.table, prep.candidates[0].index.table);
  }
  DesignConstraints cons;
  cons.max_indexes_per_table[prep.candidates[0].index.table] = 1;
  ASSERT_TRUE(cons.Validate(db_->catalog()).ok());
  double budget = TotalSize(prep);  // storage is free; only the cap binds
  IndexRecommendation mono =
      Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
  IndexRecommendation decomp =
      Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
  EXPECT_TRUE(decomp.solved_monolithic)
      << "a cap binding across clusters must force the fallback";
  ExpectBitIdentical(decomp, mono);
}

TEST_F(DecompTest, SingleClusterDegeneracyMatches) {
  // Enough cross rows to weld every group into ONE cluster: the
  // decomposed path then solves exactly one subproblem — the monolithic
  // BIP in different clothes — and must still agree.
  PreparedSpec spec;
  spec.seed = 31;
  spec.num_groups = 3;
  spec.cross_rows = 3;
  CoPhyPrepared prep = MakePrepared(*db_, spec);
  ASSERT_EQ(prep.clusters.num_clusters(), 1);
  DesignConstraints cons;
  double budget = TotalSize(prep);
  IndexRecommendation mono =
      Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
  IndexRecommendation decomp =
      Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
  EXPECT_EQ(decomp.clusters_solved, 1);
  ExpectBitIdentical(decomp, mono);
}

TEST_F(DecompTest, CacheReusesCleanClustersAcrossVeto) {
  PreparedSpec spec;
  spec.seed = 41;
  spec.num_groups = 4;
  CoPhyPrepared prep = MakePrepared(*db_, spec);
  double budget = TotalSize(prep);
  CoPhySolverCache cache;

  DesignConstraints cons;
  IndexRecommendation first =
      Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget, &cache);
  ASSERT_FALSE(first.solved_monolithic);
  EXPECT_EQ(first.clusters_solved, spec.num_groups);
  EXPECT_EQ(first.clusters_reused, 0);

  // Identical re-solve: every cluster signature matches, nothing runs.
  IndexRecommendation again =
      Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget, &cache);
  EXPECT_EQ(again.clusters_solved, 0);
  EXPECT_EQ(again.clusters_reused, spec.num_groups);
  EXPECT_EQ(again.bnb_nodes, 0);
  EXPECT_EQ(again.lp_pivots, 0);
  ExpectBitIdentical(again, first);

  // Veto one recommended index: only ITS cluster re-solves (warm), the
  // other clusters' optima are reused verbatim — and the answer still
  // matches a cold monolithic solve under the same constraints.
  ASSERT_FALSE(first.indexes.empty());
  DesignConstraints vetoed = cons;
  vetoed.vetoed_indexes.push_back(first.indexes.front());
  IndexRecommendation refined =
      Solve(*db_, prep, vetoed, CoPhySolveMode::kAuto, budget, &cache);
  EXPECT_EQ(refined.clusters_solved, 1);
  EXPECT_EQ(refined.clusters_reused, spec.num_groups - 1);
  IndexRecommendation mono =
      Solve(*db_, prep, vetoed, CoPhySolveMode::kMonolithic, budget);
  ExpectBitIdentical(refined, mono);
}

TEST_F(DecompTest, CacheSelfInvalidatesOnUniverseChange) {
  PreparedSpec spec;
  spec.seed = 51;
  CoPhyPrepared prep = MakePrepared(*db_, spec);
  double budget = TotalSize(prep);
  CoPhySolverCache cache;
  DesignConstraints cons;
  Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget, &cache);
  EXPECT_EQ(cache.universe_fingerprint, prep.universe_fingerprint);

  // A different universe (new seed => new sizes) must not reuse entries
  // keyed to the old one, even though cluster counts coincide.
  PreparedSpec spec2 = spec;
  spec2.seed = 52;
  CoPhyPrepared prep2 = MakePrepared(*db_, spec2);
  ASSERT_NE(prep2.universe_fingerprint, prep.universe_fingerprint);
  IndexRecommendation rec =
      Solve(*db_, prep2, cons, CoPhySolveMode::kAuto, budget, &cache);
  EXPECT_EQ(rec.clusters_reused, 0);
  EXPECT_EQ(cache.universe_fingerprint, prep2.universe_fingerprint);
  IndexRecommendation mono =
      Solve(*db_, prep2, cons, CoPhySolveMode::kMonolithic, budget);
  ExpectBitIdentical(rec, mono);
}

TEST_F(DecompTest, PinnedAndCappedTightBudgetSweep) {
  // The adversarial corner: pins forcing storage use, caps at 1, and a
  // budget just above the pin floor — straddling configurations where
  // per-cluster optima and the global optimum genuinely diverge.
  for (uint64_t seed : {61ull, 62ull, 63ull}) {
    PreparedSpec spec;
    spec.seed = seed;
    spec.num_groups = 3;
    CoPhyPrepared prep = MakePrepared(*db_, spec);
    DesignConstraints cons;
    cons.pinned_indexes.push_back(prep.candidates[0].index);
    for (const CandidateIndex& c : prep.candidates) {
      cons.max_indexes_per_table[c.index.table] = 1;
    }
    ASSERT_TRUE(cons.Validate(db_->catalog()).ok());
    double pin_size = prep.candidates[0].size_pages;
    for (double budget : {pin_size * 1.01, pin_size * 1.8, pin_size * 4.0}) {
      IndexRecommendation mono =
          Solve(*db_, prep, cons, CoPhySolveMode::kMonolithic, budget);
      IndexRecommendation decomp =
          Solve(*db_, prep, cons, CoPhySolveMode::kAuto, budget);
      ExpectBitIdentical(decomp, mono);
    }
  }
}

}  // namespace
}  // namespace dbdesign
