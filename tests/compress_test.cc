// Workload compression tests: signature semantics, structural
// verification of signature collisions, weight preservation (property
// swept over seeds), the template-class table, and advisor-quality /
// bit-identity preservation on compressed input.

#include <gtest/gtest.h>

#include "cophy/cophy.h"
#include "sql/binder.h"
#include "workload/compress.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class CompressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 4000;
    cfg.seed = 61;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static Database* db_;
};

Database* CompressTest::db_ = nullptr;

TEST_F(CompressTest, SameTemplateDifferentConstantsCollide) {
  BoundQuery a = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery b = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 200 AND 201");
  EXPECT_EQ(TemplateSignature(a), TemplateSignature(b));
  // Range shapes fuse too (template instantiations vary the operator).
  BoundQuery c = Q("SELECT objid FROM photoobj WHERE ra > 300");
  EXPECT_EQ(TemplateSignature(a), TemplateSignature(c));
}

TEST_F(CompressTest, DifferentStructureDoesNotCollide) {
  BoundQuery a = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery b = Q("SELECT objid FROM photoobj WHERE dec BETWEEN 10 AND 20");
  BoundQuery c = Q("SELECT objid FROM photoobj WHERE ra = 10");
  BoundQuery d = Q("SELECT objid, dec FROM photoobj WHERE ra BETWEEN 1 AND 2");
  EXPECT_NE(TemplateSignature(a), TemplateSignature(b));
  EXPECT_NE(TemplateSignature(a), TemplateSignature(c));  // eq vs range
  EXPECT_NE(TemplateSignature(a), TemplateSignature(d));  // select list
}

TEST_F(CompressTest, WeightsArePreservedExactly) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 60, 9);
  CompressionReport report;
  Workload c = CompressWorkload(w, &report);
  EXPECT_EQ(report.original_queries, 60u);
  EXPECT_LT(report.compressed_queries, 20u)
      << "template-generated workloads must compress hard";
  double w_total = 0.0;
  double c_total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) w_total += w.WeightOf(i);
  for (size_t i = 0; i < c.size(); ++i) c_total += c.WeightOf(i);
  EXPECT_DOUBLE_EQ(w_total, c_total);
}

TEST_F(CompressTest, CompressedIdsAreReassigned) {
  Workload w = GenerateWorkload(*db_, TemplateMix::Uniform(), 30, 13);
  Workload c = CompressWorkload(w);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.queries[i].id, static_cast<int>(i));
  }
}

TEST_F(CompressTest, AdvisorQualitySurvivesCompression) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 50, 17);
  CompressionReport report;
  Workload c = CompressWorkload(w, &report);
  ASSERT_LT(report.compressed_queries, report.original_queries);

  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  CoPhyOptions opts;
  opts.storage_budget_pages = data_pages;

  CoPhyAdvisor full_advisor(*db_, CostParams{}, opts);
  IndexRecommendation full = full_advisor.Recommend(w);
  CoPhyAdvisor comp_advisor(*db_, CostParams{}, opts);
  IndexRecommendation comp = comp_advisor.Recommend(c);

  // Evaluate the compressed-input recommendation on the FULL workload:
  // it must capture nearly all of the full recommendation's benefit.
  PhysicalDesign full_design;
  for (const IndexDef& i : full.indexes) full_design.AddIndex(i);
  PhysicalDesign comp_design;
  for (const IndexDef& i : comp.indexes) comp_design.AddIndex(i);
  double base = full_advisor.inum().WorkloadCost(w, PhysicalDesign{});
  double full_cost = full_advisor.inum().WorkloadCost(w, full_design);
  double comp_cost = full_advisor.inum().WorkloadCost(w, comp_design);
  double captured = (base - comp_cost) / std::max(1.0, base - full_cost);
  EXPECT_GT(captured, 0.9) << "compressed input captured only "
                           << captured * 100 << "% of the benefit";
}

TEST_F(CompressTest, EmptyAndSingletonWorkloads) {
  Workload empty;
  CompressionReport report;
  Workload c = CompressWorkload(empty, &report);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(report.fraction_retained(), 1.0);
  EXPECT_DOUBLE_EQ(report.factor(), 1.0);

  Workload one;
  one.Add(Q("SELECT objid FROM photoobj WHERE ra < 5"), 3.0);
  Workload c1 = CompressWorkload(one);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_DOUBLE_EQ(c1.WeightOf(0), 3.0);
}

TEST_F(CompressTest, ReportReadsBothWays) {
  // 60 queries -> k classes: fraction_retained = k/60 (smaller =
  // better), factor = 60/k ("compresses Nx"). The two are reciprocal.
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 60, 9);
  CompressionReport report;
  CompressWorkload(w, &report);
  ASSERT_GT(report.compressed_queries, 0u);
  EXPECT_DOUBLE_EQ(report.fraction_retained(),
                   static_cast<double>(report.compressed_queries) / 60.0);
  EXPECT_DOUBLE_EQ(report.factor(),
                   60.0 / static_cast<double>(report.compressed_queries));
  EXPECT_GT(report.factor(), 1.0);
  EXPECT_LT(report.fraction_retained(), 1.0);
}

TEST_F(CompressTest, SameTemplateComparesStructureNotConstants) {
  BoundQuery a = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery b = Q("SELECT objid FROM photoobj WHERE ra > 300");
  EXPECT_TRUE(SameTemplate(a, b)) << "range shapes of one template fuse";
  EXPECT_FALSE(SameTemplate(a, Q("SELECT objid FROM photoobj WHERE ra = 10")))
      << "equality vs range is a different template";
  EXPECT_FALSE(SameTemplate(
      a, Q("SELECT objid FROM photoobj WHERE dec BETWEEN 10 AND 20")))
      << "different predicate column";
  EXPECT_FALSE(SameTemplate(
      a, Q("SELECT objid, dec FROM photoobj WHERE ra BETWEEN 1 AND 2")))
      << "different select list";
  EXPECT_FALSE(SameTemplate(
      a, Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20 LIMIT 5")))
      << "LIMIT presence is structural";
  // Ids and constants are not structural.
  BoundQuery c = a;
  c.id = 999;
  EXPECT_TRUE(SameTemplate(a, c));
}

/// Degenerate signature: everything collides. Under the old hash-only
/// merge this fused every query into one class; the structural
/// verification layer must keep different templates apart.
uint64_t CollidingSignature(const BoundQuery&) { return 0x5EED; }

TEST_F(CompressTest, ForcedCollisionDoesNotFuseDifferentTemplates) {
  // Two structurally different queries forced onto one signature.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20"), 2.0);
  w.Add(Q("SELECT objid FROM photoobj WHERE dec BETWEEN 10 AND 20"), 5.0);
  w.Add(Q("SELECT objid FROM photoobj WHERE ra > 100"), 1.0);  // = class 1

  CompressionReport report;
  Workload c = CompressWorkload(w, &report, &CollidingSignature);
  ASSERT_EQ(c.size(), 2u)
      << "a hash collision must not silently fuse different templates";
  // Weights land on the right class: ra-range 2+1, dec-range 5.
  EXPECT_DOUBLE_EQ(c.WeightOf(0), 3.0);
  EXPECT_DOUBLE_EQ(c.WeightOf(1), 5.0);
  EXPECT_EQ(report.compressed_queries, 2u);
}

TEST_F(CompressTest, ClassTableChainsCollisionsAndCompactsOnErase) {
  TemplateClassTable table(&CollidingSignature);
  BoundQuery qa = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery qb = Q("SELECT objid FROM photoobj WHERE dec BETWEEN 10 AND 20");
  BoundQuery qc = Q("SELECT bestobjid FROM specobj WHERE z > 2.0");

  EXPECT_EQ(table.Find(qa), TemplateClassTable::npos);
  size_t a = table.AddInstance(qa, 1.0);
  size_t b = table.AddInstance(qb, 1.0);
  size_t c = table.AddInstance(qc, 1.0);
  EXPECT_EQ(table.AddInstance(qa, 2.0), a);  // chained lookup, not a merge
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Find(qb), b);
  EXPECT_DOUBLE_EQ(table.classes()[a].weight, 3.0);
  EXPECT_EQ(table.classes()[a].count, 2u);

  // Erasing the middle class compacts ids above it.
  EXPECT_TRUE(table.RemoveInstance(b, 1.0));
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Find(qb), TemplateClassTable::npos);
  EXPECT_EQ(table.Find(qc), c - 1);
  EXPECT_EQ(table.Find(qa), a);

  // Removing one of two instances keeps the class alive.
  EXPECT_FALSE(table.RemoveInstance(a, 2.0));
  EXPECT_DOUBLE_EQ(table.classes()[a].weight, 1.0);
  EXPECT_TRUE(table.RemoveInstance(a, 1.0));
  EXPECT_EQ(table.size(), 1u);
}

// Property: compression preserves total weight exactly, for any seed,
// mix and weighting.
class CompressPropertyTest : public CompressTest,
                             public ::testing::WithParamInterface<uint64_t> {};

TEST_P(CompressPropertyTest, TotalWeightIsPreservedExactly) {
  uint64_t seed = GetParam();
  for (const TemplateMix& mix :
       {TemplateMix::Uniform(), TemplateMix::OfflineDefault(),
        TemplateMix::PhaseJoins()}) {
    Workload w = GenerateWorkload(*db_, mix, 40, seed);
    // Non-uniform weights to make the sum interesting.
    for (size_t i = 0; i < w.size(); ++i) {
      w.weights[i] = 1.0 + static_cast<double>((i * seed) % 7);
    }
    CompressionReport report;
    Workload c = CompressWorkload(w, &report);
    double w_total = 0.0;
    double c_total = 0.0;
    for (size_t i = 0; i < w.size(); ++i) w_total += w.WeightOf(i);
    for (size_t i = 0; i < c.size(); ++i) c_total += c.WeightOf(i);
    EXPECT_DOUBLE_EQ(w_total, c_total);
    EXPECT_EQ(report.original_queries, w.size());
    EXPECT_EQ(report.compressed_queries, c.size());
    EXPECT_LE(c.size(), w.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressPropertyTest,
                         ::testing::Values(1u, 7u, 23u, 61u, 97u));

TEST_F(CompressTest, IdenticalDuplicatesRecommendBitIdentically) {
  // A workload of identical-constant duplicates: the compressed solve
  // faces the exact same BIP (duplicate rows collapse into an integer
  // weight), so the recommendation must be bit-identical raw vs
  // compressed — indexes, costs, everything.
  Workload generated = GenerateWorkload(*db_, TemplateMix::OfflineDefault(),
                                        12, 29);
  TemplateClassTable unique;
  Workload distinct;  // one query per template, so duplicates fold 4:1
  for (const BoundQuery& q : generated.queries) {
    if (unique.Find(q) == TemplateClassTable::npos) {
      unique.AddInstance(q);
      distinct.Add(q);
    }
  }
  ASSERT_GE(distinct.size(), 3u);
  Workload raw;
  for (const BoundQuery& q : distinct.queries) {
    for (int copy = 0; copy < 4; ++copy) raw.Add(q);
  }
  CompressionReport report;
  Workload compressed = CompressWorkload(raw, &report);
  ASSERT_EQ(report.compressed_queries, report.original_queries / 4)
      << "identical-constant duplicates must fold 4:1";

  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  CoPhyOptions opts;
  opts.storage_budget_pages = 0.5 * data_pages;
  CoPhyAdvisor raw_advisor(*db_, CostParams{}, opts);
  IndexRecommendation raw_rec = raw_advisor.Recommend(raw);
  CoPhyAdvisor comp_advisor(*db_, CostParams{}, opts);
  IndexRecommendation comp_rec = comp_advisor.Recommend(compressed);

  EXPECT_EQ(raw_rec.indexes, comp_rec.indexes);
  EXPECT_DOUBLE_EQ(raw_rec.recommended_cost, comp_rec.recommended_cost);
  EXPECT_DOUBLE_EQ(raw_rec.base_cost, comp_rec.base_cost);
  EXPECT_DOUBLE_EQ(raw_rec.total_size_pages, comp_rec.total_size_pages);
}

}  // namespace
}  // namespace dbdesign
