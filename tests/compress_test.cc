// Workload compression tests: signature semantics, weight preservation,
// and advisor-quality preservation on compressed input.

#include <gtest/gtest.h>

#include "cophy/cophy.h"
#include "sql/binder.h"
#include "workload/compress.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class CompressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 4000;
    cfg.seed = 61;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static Database* db_;
};

Database* CompressTest::db_ = nullptr;

TEST_F(CompressTest, SameTemplateDifferentConstantsCollide) {
  BoundQuery a = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery b = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 200 AND 201");
  EXPECT_EQ(TemplateSignature(a), TemplateSignature(b));
  // Range shapes fuse too (template instantiations vary the operator).
  BoundQuery c = Q("SELECT objid FROM photoobj WHERE ra > 300");
  EXPECT_EQ(TemplateSignature(a), TemplateSignature(c));
}

TEST_F(CompressTest, DifferentStructureDoesNotCollide) {
  BoundQuery a = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  BoundQuery b = Q("SELECT objid FROM photoobj WHERE dec BETWEEN 10 AND 20");
  BoundQuery c = Q("SELECT objid FROM photoobj WHERE ra = 10");
  BoundQuery d = Q("SELECT objid, dec FROM photoobj WHERE ra BETWEEN 1 AND 2");
  EXPECT_NE(TemplateSignature(a), TemplateSignature(b));
  EXPECT_NE(TemplateSignature(a), TemplateSignature(c));  // eq vs range
  EXPECT_NE(TemplateSignature(a), TemplateSignature(d));  // select list
}

TEST_F(CompressTest, WeightsArePreservedExactly) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 60, 9);
  CompressionReport report;
  Workload c = CompressWorkload(w, &report);
  EXPECT_EQ(report.original_queries, 60u);
  EXPECT_LT(report.compressed_queries, 20u)
      << "template-generated workloads must compress hard";
  double w_total = 0.0;
  double c_total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) w_total += w.WeightOf(i);
  for (size_t i = 0; i < c.size(); ++i) c_total += c.WeightOf(i);
  EXPECT_DOUBLE_EQ(w_total, c_total);
}

TEST_F(CompressTest, CompressedIdsAreReassigned) {
  Workload w = GenerateWorkload(*db_, TemplateMix::Uniform(), 30, 13);
  Workload c = CompressWorkload(w);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.queries[i].id, static_cast<int>(i));
  }
}

TEST_F(CompressTest, AdvisorQualitySurvivesCompression) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 50, 17);
  CompressionReport report;
  Workload c = CompressWorkload(w, &report);
  ASSERT_LT(report.compressed_queries, report.original_queries);

  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  CoPhyOptions opts;
  opts.storage_budget_pages = data_pages;

  CoPhyAdvisor full_advisor(*db_, CostParams{}, opts);
  IndexRecommendation full = full_advisor.Recommend(w);
  CoPhyAdvisor comp_advisor(*db_, CostParams{}, opts);
  IndexRecommendation comp = comp_advisor.Recommend(c);

  // Evaluate the compressed-input recommendation on the FULL workload:
  // it must capture nearly all of the full recommendation's benefit.
  PhysicalDesign full_design;
  for (const IndexDef& i : full.indexes) full_design.AddIndex(i);
  PhysicalDesign comp_design;
  for (const IndexDef& i : comp.indexes) comp_design.AddIndex(i);
  double base = full_advisor.inum().WorkloadCost(w, PhysicalDesign{});
  double full_cost = full_advisor.inum().WorkloadCost(w, full_design);
  double comp_cost = full_advisor.inum().WorkloadCost(w, comp_design);
  double captured = (base - comp_cost) / std::max(1.0, base - full_cost);
  EXPECT_GT(captured, 0.9) << "compressed input captured only "
                           << captured * 100 << "% of the benefit";
}

TEST_F(CompressTest, EmptyAndSingletonWorkloads) {
  Workload empty;
  CompressionReport report;
  Workload c = CompressWorkload(empty, &report);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(report.ratio(), 1.0);

  Workload one;
  one.Add(Q("SELECT objid FROM photoobj WHERE ra < 5"), 3.0);
  Workload c1 = CompressWorkload(one);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_DOUBLE_EQ(c1.WeightOf(0), 3.0);
}

}  // namespace
}  // namespace dbdesign
