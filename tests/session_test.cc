// DesignSession tests: undo/redo semantics, snapshots, action log,
// validation of interactive mutations.

#include <gtest/gtest.h>

#include "core/session.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SdssConfig cfg;
    cfg.photoobj_rows = 2000;
    cfg.seed = 31;
    db_ = std::make_unique<Database>(BuildSdssDatabase(cfg));
    designer_ = std::make_unique<Designer>(*db_);
    session_ = std::make_unique<DesignSession>(*designer_);
    photo_ = db_->catalog().FindTable(kPhotoObj);
    ra_ = db_->catalog().table(photo_).FindColumn("ra");
    dec_ = db_->catalog().table(photo_).FindColumn("dec");
  }

  IndexDef RaIndex() const { return IndexDef{photo_, {ra_}, false}; }
  IndexDef DecIndex() const { return IndexDef{photo_, {dec_}, false}; }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Designer> designer_;
  std::unique_ptr<DesignSession> session_;
  TableId photo_ = kInvalidTableId;
  ColumnId ra_ = kInvalidColumnId;
  ColumnId dec_ = kInvalidColumnId;
};

TEST_F(SessionTest, CreateUndoRedo) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  EXPECT_EQ(session_->design().indexes().size(), 2u);
  EXPECT_EQ(session_->undo_depth(), 2u);

  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().indexes().size(), 1u);
  EXPECT_TRUE(session_->design().HasIndex(RaIndex()));
  EXPECT_EQ(session_->redo_depth(), 1u);

  EXPECT_TRUE(session_->Redo());
  EXPECT_EQ(session_->design().indexes().size(), 2u);
  EXPECT_TRUE(session_->design().HasIndex(DecIndex()));
}

TEST_F(SessionTest, UndoBottomsOut) {
  EXPECT_FALSE(session_->Undo());
  EXPECT_FALSE(session_->Redo());
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  EXPECT_TRUE(session_->Undo());
  EXPECT_FALSE(session_->Undo());
  EXPECT_TRUE(session_->design().indexes().empty());
}

TEST_F(SessionTest, NewActionClearsRedo) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->Undo());
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  EXPECT_FALSE(session_->Redo()) << "redo history must die on new action";
  EXPECT_FALSE(session_->design().HasIndex(RaIndex()));
}

TEST_F(SessionTest, FailedActionDoesNotPollute) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  size_t depth = session_->undo_depth();
  size_t log_size = session_->log().size();
  EXPECT_FALSE(session_->CreateIndex(RaIndex()).ok());  // duplicate
  EXPECT_EQ(session_->undo_depth(), depth);
  EXPECT_EQ(session_->log().size(), log_size);
}

TEST_F(SessionTest, SnapshotsSaveAndRestore) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  session_->SaveSnapshot("ra_only");
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  session_->SaveSnapshot("both");

  ASSERT_TRUE(session_->RestoreSnapshot("ra_only").ok());
  EXPECT_EQ(session_->design().indexes().size(), 1u);
  // Restore is undoable.
  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().indexes().size(), 2u);

  EXPECT_EQ(session_->RestoreSnapshot("nope").code(), StatusCode::kNotFound);
  auto names = session_->SnapshotNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(SessionTest, CompareSnapshotReportsBenefit) {
  Workload w = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 6, 5);
  session_->SaveSnapshot("empty");
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  session_->SaveSnapshot("tuned");

  auto empty_report = session_->CompareSnapshot("empty", w);
  ASSERT_TRUE(empty_report.ok());
  EXPECT_NEAR(empty_report.value().average_benefit(), 0.0, 1e-9);

  auto tuned_report = session_->CompareSnapshot("tuned", w);
  ASSERT_TRUE(tuned_report.ok());
  EXPECT_GT(tuned_report.value().average_benefit(), 0.0);
}

TEST_F(SessionTest, PartitioningValidation) {
  // Non-covering vertical partitioning must be rejected.
  VerticalPartitioning vp;
  vp.table = photo_;
  vp.fragments = {VerticalFragment{{ra_}}};
  EXPECT_EQ(session_->SetVerticalPartitioning(vp).code(),
            StatusCode::kInvalidArgument);

  // Unsorted horizontal bounds must be rejected.
  HorizontalPartitioning hp;
  hp.table = photo_;
  hp.column = ra_;
  hp.bounds = {Value(200.0), Value(100.0)};
  EXPECT_EQ(session_->SetHorizontalPartitioning(hp).code(),
            StatusCode::kInvalidArgument);

  // A valid partitioning round-trips through undo.
  VerticalFragment all;
  for (ColumnId c = 0; c < db_->catalog().table(photo_).num_columns(); ++c) {
    all.columns.push_back(c);
  }
  VerticalFragment hot{{ra_, dec_}};
  vp.fragments = {hot, all};
  ASSERT_TRUE(session_->SetVerticalPartitioning(vp).ok());
  EXPECT_NE(session_->design().vertical(photo_), nullptr);
  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().vertical(photo_), nullptr);
}

TEST_F(SessionTest, ActionLogReadsLikeAScript) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->DropIndex(RaIndex()).ok());
  session_->SaveSnapshot("s1");
  session_->Undo();
  const auto& log = session_->log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "CREATE INDEX idx_photoobj_ra");
  EXPECT_EQ(log[1], "DROP INDEX idx_photoobj_ra");
  EXPECT_EQ(log[2], "SAVE s1");
  EXPECT_EQ(log[3], "UNDO");
}

TEST_F(SessionTest, UndoRestoresCostExactly) {
  Workload w = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 5, 9);
  double base = designer_->whatif().WorkloadCost(w);
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  double tuned = designer_->whatif().WorkloadCost(w);
  EXPECT_LT(tuned, base);
  ASSERT_TRUE(session_->Undo());
  EXPECT_DOUBLE_EQ(designer_->whatif().WorkloadCost(w), base);
}

}  // namespace
}  // namespace dbdesign
