// DesignSession tests: undo/redo semantics, snapshots, action log,
// validation of interactive mutations, and the constraint-driven
// recommendation loop — Recommend/Refine incrementality (zero new cost
// calls after a constraints-only edit, results bit-identical to a
// from-scratch solve), workload deltas, and JSON save/resume.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/session.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SdssConfig cfg;
    cfg.photoobj_rows = 2000;
    cfg.seed = 31;
    db_ = std::make_unique<Database>(BuildSdssDatabase(cfg));
    designer_ = std::make_unique<Designer>(*db_);
    session_ = std::make_unique<DesignSession>(*designer_);
    photo_ = db_->catalog().FindTable(kPhotoObj);
    ra_ = db_->catalog().table(photo_).FindColumn("ra");
    dec_ = db_->catalog().table(photo_).FindColumn("dec");
  }

  IndexDef RaIndex() const { return IndexDef{photo_, {ra_}, false}; }
  IndexDef DecIndex() const { return IndexDef{photo_, {dec_}, false}; }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Designer> designer_;
  std::unique_ptr<DesignSession> session_;
  TableId photo_ = kInvalidTableId;
  ColumnId ra_ = kInvalidColumnId;
  ColumnId dec_ = kInvalidColumnId;
};

TEST_F(SessionTest, CreateUndoRedo) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  EXPECT_EQ(session_->design().indexes().size(), 2u);
  EXPECT_EQ(session_->undo_depth(), 2u);

  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().indexes().size(), 1u);
  EXPECT_TRUE(session_->design().HasIndex(RaIndex()));
  EXPECT_EQ(session_->redo_depth(), 1u);

  EXPECT_TRUE(session_->Redo());
  EXPECT_EQ(session_->design().indexes().size(), 2u);
  EXPECT_TRUE(session_->design().HasIndex(DecIndex()));
}

TEST_F(SessionTest, UndoBottomsOut) {
  EXPECT_FALSE(session_->Undo());
  EXPECT_FALSE(session_->Redo());
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  EXPECT_TRUE(session_->Undo());
  EXPECT_FALSE(session_->Undo());
  EXPECT_TRUE(session_->design().indexes().empty());
}

TEST_F(SessionTest, NewActionClearsRedo) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->Undo());
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  EXPECT_FALSE(session_->Redo()) << "redo history must die on new action";
  EXPECT_FALSE(session_->design().HasIndex(RaIndex()));
}

TEST_F(SessionTest, FailedActionDoesNotPollute) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  size_t depth = session_->undo_depth();
  size_t log_size = session_->log().size();
  EXPECT_FALSE(session_->CreateIndex(RaIndex()).ok());  // duplicate
  EXPECT_EQ(session_->undo_depth(), depth);
  EXPECT_EQ(session_->log().size(), log_size);
}

TEST_F(SessionTest, SnapshotsSaveAndRestore) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  session_->SaveSnapshot("ra_only");
  ASSERT_TRUE(session_->CreateIndex(DecIndex()).ok());
  session_->SaveSnapshot("both");

  ASSERT_TRUE(session_->RestoreSnapshot("ra_only").ok());
  EXPECT_EQ(session_->design().indexes().size(), 1u);
  // Restore is undoable.
  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().indexes().size(), 2u);

  EXPECT_EQ(session_->RestoreSnapshot("nope").code(), StatusCode::kNotFound);
  auto names = session_->SnapshotNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(SessionTest, SnapshotNotFoundListsAvailableNames) {
  // With no snapshots the error says so.
  Status empty = session_->RestoreSnapshot("nope");
  EXPECT_EQ(empty.code(), StatusCode::kNotFound);
  EXPECT_NE(empty.message().find("no snapshots"), std::string::npos)
      << empty.message();

  session_->SaveSnapshot("alpha");
  session_->SaveSnapshot("beta");
  Status s = session_->RestoreSnapshot("gamma");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("alpha"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("beta"), std::string::npos) << s.message();

  Workload w = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 4, 5);
  auto compare = session_->CompareSnapshot("gamma", w);
  EXPECT_EQ(compare.status().code(), StatusCode::kNotFound);
  EXPECT_NE(compare.status().message().find("alpha"), std::string::npos);
}

TEST_F(SessionTest, CompareSnapshotReportsBenefit) {
  Workload w = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 6, 5);
  session_->SaveSnapshot("empty");
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  session_->SaveSnapshot("tuned");

  auto empty_report = session_->CompareSnapshot("empty", w);
  ASSERT_TRUE(empty_report.ok());
  EXPECT_NEAR(empty_report.value().average_benefit(), 0.0, 1e-9);

  auto tuned_report = session_->CompareSnapshot("tuned", w);
  ASSERT_TRUE(tuned_report.ok());
  EXPECT_GT(tuned_report.value().average_benefit(), 0.0);
}

TEST_F(SessionTest, PartitioningValidation) {
  // Non-covering vertical partitioning must be rejected.
  VerticalPartitioning vp;
  vp.table = photo_;
  vp.fragments = {VerticalFragment{{ra_}}};
  EXPECT_EQ(session_->SetVerticalPartitioning(vp).code(),
            StatusCode::kInvalidArgument);

  // Unsorted horizontal bounds must be rejected.
  HorizontalPartitioning hp;
  hp.table = photo_;
  hp.column = ra_;
  hp.bounds = {Value(200.0), Value(100.0)};
  EXPECT_EQ(session_->SetHorizontalPartitioning(hp).code(),
            StatusCode::kInvalidArgument);

  // A valid partitioning round-trips through undo.
  VerticalFragment all;
  for (ColumnId c = 0; c < db_->catalog().table(photo_).num_columns(); ++c) {
    all.columns.push_back(c);
  }
  VerticalFragment hot{{ra_, dec_}};
  vp.fragments = {hot, all};
  ASSERT_TRUE(session_->SetVerticalPartitioning(vp).ok());
  EXPECT_NE(session_->design().vertical(photo_), nullptr);
  EXPECT_TRUE(session_->Undo());
  EXPECT_EQ(session_->design().vertical(photo_), nullptr);
}

TEST_F(SessionTest, ActionLogReadsLikeAScript) {
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  ASSERT_TRUE(session_->DropIndex(RaIndex()).ok());
  session_->SaveSnapshot("s1");
  session_->Undo();
  const auto& log = session_->log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "CREATE INDEX idx_photoobj_ra");
  EXPECT_EQ(log[1], "DROP INDEX idx_photoobj_ra");
  EXPECT_EQ(log[2], "SAVE s1");
  EXPECT_EQ(log[3], "UNDO");
}

TEST_F(SessionTest, UndoRestoresCostExactly) {
  Workload w = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 5, 9);
  double base = designer_->whatif().WorkloadCost(w);
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  double tuned = designer_->whatif().WorkloadCost(w);
  EXPECT_LT(tuned, base);
  ASSERT_TRUE(session_->Undo());
  EXPECT_DOUBLE_EQ(designer_->whatif().WorkloadCost(w), base);
}

// --- The constraint-driven recommendation loop ---

TEST_F(SessionTest, RecommendRequiresWorkload) {
  auto rec = session_->Recommend();
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, RecommendAppliesAsOneUndoableStep) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, 13));
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_FALSE(rec.value().indexes.empty());

  // The recommendation is the design now.
  for (const IndexDef& idx : rec.value().indexes) {
    EXPECT_TRUE(session_->design().HasIndex(idx));
  }
  EXPECT_EQ(session_->design().indexes().size(), rec.value().indexes.size());

  // ... and it is one undoable step.
  ASSERT_TRUE(session_->Undo());
  EXPECT_TRUE(session_->design().indexes().empty());
  ASSERT_TRUE(session_->Redo());
  EXPECT_EQ(session_->design().indexes().size(), rec.value().indexes.size());
}

TEST_F(SessionTest, RefineIsFreeAndBitIdenticalToFromScratch) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37);
  session_->SetWorkload(w);
  auto initial = session_->Recommend();
  ASSERT_TRUE(initial.ok());
  ASSERT_GE(initial.value().indexes.size(), 2u);

  // The DBA vetoes the first recommended index and pins the second.
  ConstraintDelta delta;
  delta.veto.push_back(initial.value().indexes[0]);
  delta.pin.push_back(initial.value().indexes[1]);

  // A constraints-only Refine must make ZERO new backend optimizer
  // calls and ZERO new INUM populations — the whole point of keeping
  // the prepared atom matrix (acceptance criterion of the incremental
  // loop).
  ASSERT_TRUE(session_->prepared());
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto refined = session_->Refine(delta);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls)
      << "Refine after a constraints-only edit must not touch the backend";
  EXPECT_EQ(session_->inum_populate_count(), populates)
      << "Refine after a constraints-only edit must not repopulate INUM";

  // The refined result honors the edit.
  EXPECT_FALSE(refined.value().indexes.empty());
  for (const IndexDef& idx : refined.value().indexes) {
    EXPECT_FALSE(idx == initial.value().indexes[0]);
  }
  bool has_pin = false;
  for (const IndexDef& idx : refined.value().indexes) {
    has_pin |= idx == initial.value().indexes[1];
  }
  EXPECT_TRUE(has_pin);

  // ... and is bit-identical to a from-scratch solve under the same
  // constraints on a fresh designer/session.
  Designer fresh_designer(*db_);
  DesignSession fresh(fresh_designer);
  fresh.SetWorkload(w);
  ASSERT_TRUE(fresh.SetConstraints(session_->constraints()).ok());
  auto scratch = fresh.Recommend();
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch.value().indexes, refined.value().indexes);
  EXPECT_DOUBLE_EQ(scratch.value().recommended_cost,
                   refined.value().recommended_cost);
  EXPECT_DOUBLE_EQ(scratch.value().base_cost, refined.value().base_cost);
}

TEST_F(SessionTest, CertificateRefineIsInstantAndMatchesFromScratch) {
  // The demo's most common reaction — pinning indexes the tool just
  // recommended — is a tightening-only edit: the previous optimum's
  // certificate survives and Refine answers with no solver work.
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37);
  session_->SetWorkload(w);
  auto initial = session_->Recommend();
  ASSERT_TRUE(initial.ok());
  ASSERT_GE(initial.value().indexes.size(), 2u);
  ASSERT_TRUE(initial.value().proven_optimal)
      << "test workload too hard: no optimality certificate to reuse";

  ConstraintDelta keep;
  keep.pin.push_back(initial.value().indexes[0]);
  keep.pin.push_back(initial.value().indexes[1]);
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto refined = session_->Refine(keep);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
  EXPECT_EQ(session_->inum_populate_count(), populates);
  // Certificate reuse returns the identical configuration.
  EXPECT_EQ(refined.value().indexes, initial.value().indexes);
  EXPECT_DOUBLE_EQ(refined.value().recommended_cost,
                   initial.value().recommended_cost);

  // ... and matches a from-scratch solve under the same constraints.
  Designer fresh_designer(*db_);
  DesignSession fresh(fresh_designer);
  fresh.SetWorkload(w);
  ASSERT_TRUE(fresh.SetConstraints(session_->constraints()).ok());
  auto scratch = fresh.Recommend();
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch.value().indexes, refined.value().indexes);
  EXPECT_DOUBLE_EQ(scratch.value().recommended_cost,
                   refined.value().recommended_cost);
}

TEST_F(SessionTest, RefinePinOutsideUniverseStaysBackendFree) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, 13));
  ASSERT_TRUE(session_->Recommend().ok());

  // Pin an index CoPhy would never mine: the candidate universe extends
  // from the warm INUM cache — atoms rebuild, but no backend calls and
  // no new populations.
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId rerun = db_->catalog().table(photo).FindColumn("rerun");
  ConstraintDelta delta;
  delta.pin.push_back(IndexDef{photo, {rerun}, false});
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto refined = session_->Refine(delta);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
  EXPECT_EQ(session_->inum_populate_count(), populates);
  bool has_pin = false;
  for (const IndexDef& idx : refined.value().indexes) {
    has_pin |= idx == delta.pin[0];
  }
  EXPECT_TRUE(has_pin);
}

TEST_F(SessionTest, WorkloadDeltasKeepPreparedStateLive) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 6, 13);
  session_->SetWorkload(w);
  ASSERT_TRUE(session_->Recommend().ok());
  ASSERT_TRUE(session_->prepared());

  // Adding queries keeps the prepared matrix (only new rows are built).
  Workload extra = GenerateWorkload(*db_, TemplateMix::PhaseJoins(), 3, 99);
  session_->AddQueries(extra.queries);
  EXPECT_TRUE(session_->prepared());
  EXPECT_EQ(session_->workload().size(), 9u);
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().per_query_cost.size(), 9u);

  // Removing queries keeps it too.
  ASSERT_TRUE(session_->RemoveQueries({0, 5}).ok());
  EXPECT_EQ(session_->workload().size(), 7u);
  auto rec2 = session_->Recommend();
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2.value().per_query_cost.size(), 7u);

  EXPECT_EQ(session_->RemoveQueries({42}).code(), StatusCode::kOutOfRange);
}

TEST_F(SessionTest, AddQueriesExtendsCandidateUniverse) {
  // Prepare on a photoobj-only workload, then add a selective specobj
  // query: the candidate universe must grow so the new query can get a
  // useful index — not be stuck with the stale photoobj-only universe.
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 6, 13));
  ASSERT_TRUE(session_->Recommend().ok());

  auto spec_q = ParseAndBind(
      db_->catalog(), "SELECT bestobjid FROM specobj WHERE z > 2.9");
  ASSERT_TRUE(spec_q.ok());
  session_->AddQueries({spec_q.value(), spec_q.value(), spec_q.value()});
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  TableId spec = db_->catalog().FindTable(kSpecObj);
  bool has_spec_index = false;
  for (const IndexDef& idx : rec.value().indexes) {
    has_spec_index |= idx.table == spec;
  }
  EXPECT_TRUE(has_spec_index)
      << "the added specobj query deserves a specobj index";
}

// --- Template classes: the compressed recommendation pipeline ---

TEST_F(SessionTest, WorkloadCompressesIntoTemplateClasses) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 60, 13);
  session_->SetWorkload(w);
  // Template-generated traces compress hard: far fewer classes than
  // queries, total weight preserved exactly.
  EXPECT_LT(session_->num_template_classes(), 15u);
  EXPECT_GT(session_->num_template_classes(), 0u);
  double class_weight = 0.0;
  size_t class_count = 0;
  for (const TemplateClass& cls : session_->template_classes()) {
    class_weight += cls.weight;
    class_count += cls.count;
  }
  EXPECT_DOUBLE_EQ(class_weight, 60.0);
  EXPECT_EQ(class_count, 60u);

  // The prepared pipeline runs per class: INUM populates and atom rows
  // scale with classes, not queries.
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().per_query_cost.size(), 60u)
      << "per_query_cost still reports per raw query";
  EXPECT_LE(session_->inum_populate_count(),
            128u * session_->num_template_classes());
}

TEST_F(SessionTest, SameTemplateAddIsAPureWeightBump) {
  Workload w;
  auto add = [&](const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    w.Add(q.value());
  };
  add("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20");
  add("SELECT objid, dec FROM photoobj WHERE dec < 0 ORDER BY dec");
  add("SELECT bestobjid FROM specobj WHERE z > 2.5");
  session_->SetWorkload(w);
  ASSERT_TRUE(session_->Recommend().ok());
  size_t classes_before = session_->num_template_classes();

  // Append an instance of the first template with different constants:
  // same class, so this is a pure weight bump — no candidate mining, no
  // atom building, ZERO new backend cost calls and ZERO INUM populates,
  // both for the append and for the Recommend that follows (acceptance
  // criterion of the compression layer).
  auto inst = ParseAndBind(db_->catalog(),
                           "SELECT objid FROM photoobj WHERE ra > 150");
  ASSERT_TRUE(inst.ok());
  // The populate counter is the live signal here (the pipeline is
  // client-side); the backend counter additionally guards against any
  // future backend routing on this path.
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  session_->AddQueries({inst.value()});
  EXPECT_EQ(session_->num_template_classes(), classes_before);
  EXPECT_EQ(session_->workload().size(), 4u);
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls)
      << "a same-template append must not touch the backend";
  EXPECT_EQ(session_->inum_populate_count(), populates);

  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls)
      << "Recommend after a same-template append must not touch the backend";
  EXPECT_EQ(session_->inum_populate_count(), populates);
  EXPECT_EQ(rec.value().per_query_cost.size(), 4u);
  // The bumped class's weight reaches the objective: the doubled
  // template contributes twice its per-query cost.
  EXPECT_DOUBLE_EQ(
      rec.value().recommended_cost,
      rec.value().per_query_cost[0] * 2.0 + rec.value().per_query_cost[1] +
          rec.value().per_query_cost[2]);
  EXPECT_DOUBLE_EQ(rec.value().per_query_cost[0],
                   rec.value().per_query_cost[3]);
}

TEST_F(SessionTest, NonPositiveWeightAddNeverKeepsTheCertificate) {
  // The weight-bump certificate argument only holds for delta > 0: a
  // negative-weight append must force a re-solve, not reuse the old
  // optimum as "certified".
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, 13));
  ASSERT_TRUE(session_->Recommend().ok());
  session_->AddQueries({session_->workload().queries[0]}, -0.5);
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(session_->log().back().find("certificate reuse"),
            std::string::npos)
      << "negative-weight bump reused the certificate: "
      << session_->log().back();

  // A positive same-template append right after IS certificate-eligible
  // again (the re-solve renewed it) — and still zero backend calls.
  uint64_t backend_calls = session_->backend_optimizer_calls();
  session_->AddQueries({session_->workload().queries[0]}, 1.0);
  ASSERT_TRUE(session_->Recommend().ok());
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
}

TEST_F(SessionTest, RemoveQueriesDropsEmptyClasses) {
  Workload w;
  auto q1 = ParseAndBind(db_->catalog(),
                         "SELECT objid FROM photoobj WHERE ra BETWEEN 1 AND 2");
  auto q2 = ParseAndBind(db_->catalog(),
                         "SELECT objid FROM photoobj WHERE ra > 50");
  auto q3 = ParseAndBind(db_->catalog(),
                         "SELECT bestobjid FROM specobj WHERE z > 2.5");
  ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());
  w.Add(q1.value());  // class 0 (ra range)
  w.Add(q2.value());  // class 0 again (range shapes fuse)
  w.Add(q3.value());  // class 1
  session_->SetWorkload(w);
  ASSERT_EQ(session_->num_template_classes(), 2u);
  ASSERT_TRUE(session_->Recommend().ok());

  // Removing one of two instances keeps the class (weight decremented).
  ASSERT_TRUE(session_->RemoveQueries({0}).ok());
  EXPECT_EQ(session_->num_template_classes(), 2u);
  EXPECT_DOUBLE_EQ(session_->template_classes()[0].weight, 1.0);

  // Removing the last instance drops the class and only its atoms; the
  // next Recommend still works (and needs no new INUM populations).
  ASSERT_TRUE(session_->RemoveQueries({0}).ok());
  EXPECT_EQ(session_->num_template_classes(), 1u);
  uint64_t populates = session_->inum_populate_count();
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(session_->inum_populate_count(), populates);
  EXPECT_EQ(rec.value().per_query_cost.size(), 1u);
}

TEST_F(SessionTest, BigTraceCostCallsScaleWithClassesNotQueries) {
  // The acceptance scenario: a 50k-query generated SDSS trace must
  // recommend with backend cost calls (and INUM populations)
  // proportional to its handful of template classes, not its 50k
  // queries.
  Workload trace =
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 50000, 77);
  session_->SetWorkload(trace);
  size_t classes = session_->num_template_classes();
  ASSERT_LT(classes, 32u) << "SDSS template traces compress to ~10 classes";

  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec.value().indexes.empty());
  EXPECT_EQ(rec.value().per_query_cost.size(), 50000u);
  // Populations are bounded by the per-class combo cap (InumOptions
  // max_combos = 128) — orders of magnitude below one per query. The
  // INUM populate counter carries the real cost-call signal: the
  // designer pipeline is fully client-side, so the backend optimizer
  // counter must stay at exactly zero (any backend routing at all
  // would be a scaling regression on a 50k trace).
  EXPECT_LE(session_->inum_populate_count(), 128u * classes);
  EXPECT_LT(session_->inum_populate_count(), 50000u / 100u);
  EXPECT_EQ(session_->backend_optimizer_calls(), 0u);

  // A same-template append on the big trace re-recommends with zero
  // new backend cost calls.
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  session_->AddQueries({trace.queries[17]});
  auto again = session_->Recommend();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
  EXPECT_EQ(session_->inum_populate_count(), populates);
}

// --- Deployment planning: the loop's last stage ---

class SessionDeployTest : public SessionTest {
 protected:
  /// The compressed class workload the schedule is costed over.
  Workload ClassWorkload() const {
    Workload w;
    for (const TemplateClass& cls : session_->template_classes()) {
      w.Add(cls.representative, cls.weight);
    }
    return w;
  }
};

TEST_F(SessionDeployTest, PlanDeploymentRequiresRecommendation) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 6, 37));
  auto plan = session_->PlanDeployment();
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session_->last_deployment(), nullptr);
}

TEST_F(SessionDeployTest, WarmPlanDeploymentMakesZeroBackendCalls) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37));
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  ASSERT_GE(rec.value().indexes.size(), 2u);

  // Acceptance criterion: after a warm Recommend the whole deployment
  // stage — DoI matrix, clusters, schedule — runs on cached INUM atoms.
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto plan = session_->PlanDeployment();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls)
      << "PlanDeployment after a warm Recommend must not touch the backend";
  EXPECT_EQ(session_->inum_populate_count(), populates)
      << "PlanDeployment after a warm Recommend must not repopulate INUM";

  const DeploymentPlan& p = plan.value();
  EXPECT_EQ(p.indexes, rec.value().indexes);
  ASSERT_EQ(p.schedule.steps.size(), p.indexes.size());
  EXPECT_TRUE(p.schedule.skipped.empty());
  EXPECT_FALSE(p.schedule_reused);
  EXPECT_EQ(p.doi_rows_computed, session_->num_template_classes());

  // Every index is scheduled exactly once, cumulative pages are exact
  // prefix sums, and each step is assigned to an interaction cluster.
  double pages = 0.0;
  for (const ScheduleStep& s : p.schedule.steps) {
    pages += s.build_pages;
    EXPECT_DOUBLE_EQ(s.cumulative_pages, pages);
    EXPECT_GE(s.cluster, 0);
    EXPECT_LT(s.cluster, static_cast<int>(p.clusters.size()));
  }
  EXPECT_DOUBLE_EQ(p.schedule.total_pages, pages);

  // Clusters partition the index set.
  size_t members = 0;
  for (const auto& c : p.clusters) members += c.size();
  EXPECT_EQ(members, p.indexes.size());

  EXPECT_EQ(session_->last_deployment()->indexes, p.indexes);
}

TEST_F(SessionDeployTest, ScheduleFinalCostMatchesEvaluateDesigns) {
  // The schedule's incrementally maintained final cost must equal a
  // from-scratch Designer::EvaluateDesigns of the full design — the
  // invariant that catches bookkeeping drift between the step costs
  // and the design they claim to describe.
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37));
  ASSERT_TRUE(session_->Recommend().ok());
  auto plan = session_->PlanDeployment();
  ASSERT_TRUE(plan.ok());
  const MaterializationSchedule& sched = plan.value().schedule;
  ASSERT_FALSE(sched.steps.empty());

  PhysicalDesign full;
  for (const ScheduleStep& s : sched.steps) full.AddIndex(s.index);
  Designer fresh(*db_);
  BenefitReport report = fresh.EvaluateDesign(ClassWorkload(), full);
  EXPECT_DOUBLE_EQ(sched.final_cost, report.new_total);
  EXPECT_DOUBLE_EQ(sched.base_cost, report.base_total);
  EXPECT_DOUBLE_EQ(sched.steps.back().cost_after, sched.final_cost);
}

TEST_F(SessionDeployTest, NeutralRefineReusesScheduleOutright) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37));
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  auto first = session_->PlanDeployment();
  ASSERT_TRUE(first.ok());

  // Veto an index that was never recommended: the certificate holds,
  // the index set is unchanged, and the schedule is provably unchanged.
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId rerun = db_->catalog().table(photo).FindColumn("rerun");
  IndexDef unused{photo, {rerun}, false};
  for (const IndexDef& idx : rec.value().indexes) ASSERT_FALSE(idx == unused);
  ConstraintDelta delta;
  delta.veto.push_back(unused);
  auto refined = session_->Refine(delta);
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined.value().indexes, rec.value().indexes);

  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto second = session_->PlanDeployment();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
  EXPECT_EQ(session_->inum_populate_count(), populates);
  EXPECT_TRUE(second.value().schedule_reused);
  EXPECT_EQ(second.value().doi_rows_computed, 0u);
  EXPECT_EQ(second.value().doi_rows_reused, session_->num_template_classes());

  // Reused outright means identical, field by field.
  const MaterializationSchedule& a = first.value().schedule;
  const MaterializationSchedule& b = second.value().schedule;
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t k = 0; k < a.steps.size(); ++k) {
    EXPECT_TRUE(a.steps[k].index == b.steps[k].index);
    EXPECT_EQ(a.steps[k].cost_after, b.steps[k].cost_after);
    EXPECT_EQ(a.steps[k].cumulative_pages, b.steps[k].cumulative_pages);
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
}

TEST_F(SessionDeployTest, WeightBumpReweightsDoiWithoutRecompute) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37);
  session_->SetWorkload(w);
  ASSERT_TRUE(session_->Recommend().ok());
  auto first = session_->PlanDeployment();
  ASSERT_TRUE(first.ok());

  // A same-template append is a pure weight bump: every cached DoI row
  // stays valid (the class's atoms did not change) — only the weighted
  // sums and the schedule move.
  session_->AddQueries({w.queries[0], w.queries[1]});
  ASSERT_TRUE(session_->Recommend().ok());  // instant certificate reuse
  uint64_t backend_calls = session_->backend_optimizer_calls();
  uint64_t populates = session_->inum_populate_count();
  auto second = session_->PlanDeployment();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session_->backend_optimizer_calls(), backend_calls);
  EXPECT_EQ(session_->inum_populate_count(), populates);
  EXPECT_EQ(second.value().doi_rows_computed, 0u)
      << "weight bumps must not recompute any DoI row";
  EXPECT_EQ(second.value().doi_rows_reused, session_->num_template_classes());
  // The schedule was re-derived (weights shifted every marginal).
  EXPECT_FALSE(second.value().schedule_reused);

  // New templates recompute exactly their own rows (a hand-written
  // query no generator mix emits, so it cannot fold into an existing
  // class).
  auto fresh = ParseAndBind(
      db_->catalog(),
      "SELECT objid FROM photoobj WHERE nchild > 4 AND extinction_r < 0.05");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  size_t before = session_->num_template_classes();
  session_->AddQueries({fresh.value()});
  size_t added = session_->num_template_classes() - before;
  ASSERT_GT(added, 0u);
  ASSERT_TRUE(session_->Recommend().ok());
  auto third = session_->PlanDeployment();
  ASSERT_TRUE(third.ok());
  if (third.value().indexes == second.value().indexes) {
    EXPECT_EQ(third.value().doi_rows_computed, added);
    EXPECT_EQ(third.value().doi_rows_reused, before);
  } else {
    // The recommendation itself changed: every row is against a new
    // index set and must recompute.
    EXPECT_EQ(third.value().doi_rows_computed,
              session_->num_template_classes());
  }
}

TEST_F(SessionDeployTest, PinnedIndexesAreScheduledFirst) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37));
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  ASSERT_GE(rec.value().indexes.size(), 2u);

  // Pin the index greedy would otherwise build LAST.
  auto first = session_->PlanDeployment();
  ASSERT_TRUE(first.ok());
  IndexDef last_built = first.value().schedule.steps.back().index;
  ConstraintDelta delta;
  delta.pin.push_back(last_built);
  ASSERT_TRUE(session_->Refine(delta).ok());

  auto plan = session_->PlanDeployment();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().schedule_reused)
      << "pinning a recommended index reorders the schedule";
  ASSERT_FALSE(plan.value().schedule.steps.empty());
  EXPECT_TRUE(plan.value().schedule.steps.front().index == last_built);
  EXPECT_TRUE(plan.value().schedule.steps.front().pinned);
  // Pins form a prefix of the schedule.
  bool seen_unpinned = false;
  for (const ScheduleStep& s : plan.value().schedule.steps) {
    if (!s.pinned) {
      seen_unpinned = true;
    } else {
      EXPECT_FALSE(seen_unpinned) << "pinned step after an unpinned one";
    }
  }
}

TEST_F(SessionDeployTest, ClassSwapWithSameWeightsRebuildsSchedule) {
  // Regression: a remove-class + add-class edit that reproduces the old
  // per-class weight VECTOR must not reuse the schedule costed on the
  // old workload — class identity is part of the certificate.
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37);
  session_->SetWorkload(w);
  ASSERT_TRUE(session_->Recommend().ok());
  ASSERT_TRUE(session_->PlanDeployment().ok());

  // Drop every instance of the last class, then add a fresh template
  // carrying exactly the weight that was removed.
  size_t victim = session_->num_template_classes() - 1;
  double removed_weight = session_->template_classes()[victim].weight;
  std::vector<size_t> positions;
  for (size_t i = 0; i < session_->workload().size(); ++i) {
    if (session_->template_classes()[victim].representative.StructuralHash() ==
        session_->workload().queries[i].StructuralHash()) {
      positions.push_back(i);
    }
  }
  ASSERT_FALSE(positions.empty());
  ASSERT_TRUE(session_->RemoveQueries(positions).ok());
  auto fresh = ParseAndBind(
      db_->catalog(),
      "SELECT objid FROM photoobj WHERE nchild > 4 AND extinction_r < 0.05");
  ASSERT_TRUE(fresh.ok());
  session_->AddQueries({fresh.value()}, removed_weight);
  ASSERT_TRUE(session_->Recommend().ok());

  auto plan = session_->PlanDeployment();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().schedule_reused)
      << "schedule costed on the old class must not survive the swap";
  // The schedule's costs describe the CURRENT workload, not the old one.
  const MaterializationSchedule& sched = plan.value().schedule;
  PhysicalDesign full;
  for (const ScheduleStep& s : sched.steps) full.AddIndex(s.index);
  Designer fresh_designer(*db_);
  BenefitReport report = fresh_designer.EvaluateDesign(ClassWorkload(), full);
  EXPECT_DOUBLE_EQ(sched.base_cost, report.base_total);
  EXPECT_DOUBLE_EQ(sched.final_cost, report.new_total);
}

TEST_F(SessionDeployTest, SetWorkloadInvalidatesDeployment) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 6, 37));
  ASSERT_TRUE(session_->Recommend().ok());
  ASSERT_TRUE(session_->PlanDeployment().ok());
  ASSERT_NE(session_->last_deployment(), nullptr);

  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 4, 5));
  EXPECT_EQ(session_->last_deployment(), nullptr);
}

TEST_F(SessionTest, SessionJsonRoundTrip) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 6, 21);
  session_->SetWorkload(w);
  DesignConstraints constraints;
  constraints.Pin(RaIndex());
  constraints.storage_budget_pages = 800.0;
  ASSERT_TRUE(session_->SetConstraints(constraints).ok());
  auto rec = session_->Recommend();
  ASSERT_TRUE(rec.ok());
  session_->SaveSnapshot("tuned");

  Json j = session_->ToJson();
  Designer fresh_designer(*db_);
  DesignSession resumed(fresh_designer);
  ASSERT_TRUE(resumed.LoadFromJson(j).ok());

  EXPECT_EQ(resumed.constraints(), session_->constraints());
  EXPECT_EQ(resumed.workload().size(), session_->workload().size());
  EXPECT_EQ(resumed.SnapshotNames(), session_->SnapshotNames());
  EXPECT_EQ(resumed.design().Fingerprint(), session_->design().Fingerprint());

  // The resumed session can pick the loop right back up: a Recommend
  // under the restored constraints reproduces the same configuration.
  auto again = resumed.Recommend();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().indexes, rec.value().indexes);
}

TEST_F(SessionTest, SessionFileRoundTrip) {
  session_->SetWorkload(
      GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 4, 3));
  ASSERT_TRUE(session_->CreateIndex(RaIndex()).ok());
  session_->SaveSnapshot("manual");

  std::string path = ::testing::TempDir() + "dbdesign_session_test.json";
  ASSERT_TRUE(session_->SaveToFile(path).ok());
  Designer fresh_designer(*db_);
  DesignSession resumed(fresh_designer);
  ASSERT_TRUE(resumed.LoadFromFile(path).ok());
  EXPECT_TRUE(resumed.design().HasIndex(RaIndex()));
  EXPECT_EQ(resumed.SnapshotNames(), session_->SnapshotNames());
  std::remove(path.c_str());

  EXPECT_EQ(resumed.LoadFromFile("/nonexistent/session.json").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dbdesign
