// LP simplex and branch & bound tests, including brute-force
// cross-validation on random binary programs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "solver/bnb.h"
#include "solver/simplex.h"
#include "util/rng.h"

namespace dbdesign {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => min -3x -5y.
  // Optimum: x=2, y=6, obj=36.
  LpProblem p;
  int x = p.AddVariable(-3.0);
  int y = p.AddVariable(-5.0);
  p.AddConstraint({{{x, 1.0}}, LpRelation::kLe, 4.0});
  p.AddConstraint({{{y, 2.0}}, LpRelation::kLe, 12.0});
  p.AddConstraint({{{x, 3.0}, {y, 2.0}}, LpRelation::kLe, 18.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 6.0, 1e-6);
}

TEST(SimplexTest, EqualityAndGeConstraints) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2. Optimum x=8, y=2, obj=12.
  LpProblem p;
  int x = p.AddVariable(1.0);
  int y = p.AddVariable(2.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, LpRelation::kEq, 10.0});
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 3.0});
  p.AddConstraint({{{y, 1.0}}, LpRelation::kGe, 2.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 8.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpProblem p;
  int x = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 5.0});
  p.AddConstraint({{{x, 1.0}}, LpRelation::kLe, 3.0});
  EXPECT_EQ(SolveLp(p).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem p;
  int x = p.AddVariable(-1.0);  // maximize x with no upper bound
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 0.0});
  EXPECT_EQ(SolveLp(p).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  LpProblem p;
  int x = p.AddVariable(1.0);
  p.AddConstraint({{{x, -1.0}}, LpRelation::kLe, -5.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  LpProblem p;
  int x1 = p.AddVariable(-0.75);
  int x2 = p.AddVariable(150.0);
  int x3 = p.AddVariable(-0.02);
  int x4 = p.AddVariable(6.0);
  p.AddConstraint(
      {{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, LpRelation::kLe, 0.0});
  p.AddConstraint(
      {{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, LpRelation::kLe, 0.0});
  p.AddConstraint({{{x3, 1.0}}, LpRelation::kLe, 1.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(SimplexTest, RandomLpsRespectConstraints) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    LpProblem p;
    int n = 3 + static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < n; ++i) {
      p.AddVariable(rng.UniformDouble(-5.0, 5.0));
    }
    int m = 2 + static_cast<int>(rng.UniformInt(0, 4));
    for (int c = 0; c < m; ++c) {
      LpConstraint con;
      for (int i = 0; i < n; ++i) {
        con.terms.emplace_back(i, rng.UniformDouble(0.1, 3.0));
      }
      con.rel = LpRelation::kLe;
      con.rhs = rng.UniformDouble(1.0, 20.0);
      p.AddConstraint(std::move(con));
    }
    LpSolution s = SolveLp(p);
    // All-positive coefficients with positive rhs: always feasible (0)
    // and bounded below only if some c_i < 0 ... objective may push some
    // variable up to a constraint; either way simplex must terminate
    // optimal (bounded: every var bounded by constraints).
    ASSERT_TRUE(s.optimal()) << "trial " << trial;
    for (size_t c = 0; c < p.constraints.size(); ++c) {
      double lhs = 0.0;
      for (auto [v, coef] : p.constraints[c].terms) {
        lhs += coef * s.values[static_cast<size_t>(v)];
      }
      EXPECT_LE(lhs, p.constraints[c].rhs + 1e-6);
    }
    for (double v : s.values) EXPECT_GE(v, -1e-9);
  }
}

// --- Branch & bound ---

TEST(BnbTest, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum: a+b = 16.
  MipProblem mip;
  int a = mip.lp.AddVariable(-10.0);
  int b = mip.lp.AddVariable(-6.0);
  int c = mip.lp.AddVariable(-4.0);
  mip.lp.AddConstraint(
      {{{a, 1.0}, {b, 1.0}, {c, 1.0}}, LpRelation::kLe, 2.0});
  mip.binary_vars = {a, b, c};
  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<size_t>(a)], 1.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<size_t>(c)], 0.0, 1e-6);
}

TEST(BnbTest, FractionalLpForcedIntegral) {
  // Knapsack where LP relaxation is fractional:
  // max 5a + 4b s.t. 3a + 2b <= 4. LP: a=1,b=0.5 obj 7; IP best: b+... a=0,b=1
  // (weight 2): 4; or a=1 (weight 3): 5 -> optimum 5.
  MipProblem mip;
  int a = mip.lp.AddVariable(-5.0);
  int b = mip.lp.AddVariable(-4.0);
  mip.lp.AddConstraint({{{a, 3.0}, {b, 2.0}}, LpRelation::kLe, 4.0});
  mip.binary_vars = {a, b};
  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-6);
  EXPECT_LE(r.gap(), 1e-6);
}

TEST(BnbTest, InfeasibleMip) {
  MipProblem mip;
  int a = mip.lp.AddVariable(1.0);
  mip.lp.AddConstraint({{{a, 1.0}}, LpRelation::kGe, 2.0});  // a>=2 vs a<=1
  mip.binary_vars = {a};
  BnbResult r = SolveBinaryMip(mip);
  EXPECT_FALSE(r.feasible);
}

TEST(BnbTest, HeuristicProvidesIncumbent) {
  MipProblem mip;
  int a = mip.lp.AddVariable(-3.0);
  int b = mip.lp.AddVariable(-2.0);
  mip.lp.AddConstraint({{{a, 2.0}, {b, 2.0}}, LpRelation::kLe, 3.0});
  mip.binary_vars = {a, b};
  int heuristic_calls = 0;
  auto heuristic = [&](const std::vector<double>& /*lp*/, std::vector<double>* out,
                       double* obj) {
    ++heuristic_calls;
    *out = {1.0, 0.0};
    *obj = -3.0;
    return true;
  };
  BnbResult r = SolveBinaryMip(mip, BnbOptions{}, heuristic);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(heuristic_calls, 0);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(BnbTest, NodeBudgetStillReportsBoundAndIncumbent) {
  // Tight budget: must stay feasible with a valid (possibly loose) gap.
  Rng rng(7);
  MipProblem mip;
  const int n = 14;
  for (int i = 0; i < n; ++i) {
    mip.lp.AddVariable(-rng.UniformDouble(1.0, 10.0));
    mip.binary_vars.push_back(i);
  }
  LpConstraint budget;
  for (int i = 0; i < n; ++i) {
    budget.terms.emplace_back(i, rng.UniformDouble(1.0, 5.0));
  }
  budget.rel = LpRelation::kLe;
  budget.rhs = 8.0;
  mip.lp.AddConstraint(std::move(budget));

  BnbOptions opts;
  opts.max_nodes = 3;
  auto greedy = [&](const std::vector<double>& /*lp*/, std::vector<double>* out,
                    double* obj) {
    out->assign(n, 0.0);
    *obj = 0.0;
    return true;  // trivial feasible: build nothing
  };
  BnbResult r = SolveBinaryMip(mip, opts, greedy);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.lower_bound, r.objective + 1e-9);
  EXPECT_GE(r.gap(), 0.0);
}

struct RandomMipCase {
  uint64_t seed;
  int vars;
  int cons;
};

class BnbRandomTest : public ::testing::TestWithParam<RandomMipCase> {};

TEST_P(BnbRandomTest, MatchesBruteForce) {
  const RandomMipCase& param = GetParam();
  Rng rng(param.seed);
  MipProblem mip;
  std::vector<double> costs;
  for (int i = 0; i < param.vars; ++i) {
    double c = rng.UniformDouble(-10.0, 2.0);
    costs.push_back(c);
    mip.lp.AddVariable(c);
    mip.binary_vars.push_back(i);
  }
  std::vector<LpConstraint> cons;
  for (int c = 0; c < param.cons; ++c) {
    LpConstraint con;
    for (int i = 0; i < param.vars; ++i) {
      if (rng.Bernoulli(0.7)) {
        con.terms.emplace_back(i, rng.UniformDouble(0.5, 4.0));
      }
    }
    if (con.terms.empty()) con.terms.emplace_back(0, 1.0);
    con.rel = LpRelation::kLe;
    con.rhs = rng.UniformDouble(2.0, 10.0);
    cons.push_back(con);
    mip.lp.AddConstraint(std::move(con));
  }

  // Brute force over all 2^n assignments.
  double best = 0.0;  // all-zero is feasible for <= with positive coefs
  for (int mask = 0; mask < (1 << param.vars); ++mask) {
    double obj = 0.0;
    bool ok = true;
    for (const LpConstraint& con : cons) {
      double lhs = 0.0;
      for (auto [v, coef] : con.terms) {
        if (mask & (1 << v)) lhs += coef;
      }
      if (lhs > con.rhs + 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int i = 0; i < param.vars; ++i) {
      if (mask & (1 << i)) obj += costs[static_cast<size_t>(i)];
    }
    best = std::min(best, obj);
  }

  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal) << "nodes=" << r.nodes_explored;
  EXPECT_NEAR(r.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbRandomTest,
                         ::testing::Values(RandomMipCase{1, 8, 3},
                                           RandomMipCase{2, 10, 4},
                                           RandomMipCase{3, 12, 5},
                                           RandomMipCase{4, 12, 2},
                                           RandomMipCase{5, 14, 6},
                                           RandomMipCase{6, 9, 8}));

// --- Presolve by substitution ---

TEST(PresolveTest, FullyFixedProblemSolvesInZeroPivots) {
  // Every binary fixed: presolve substitutes them all, the reduced LP
  // has zero variables, and no simplex pivot may run.
  MipProblem mip;
  for (int i = 0; i < 6; ++i) {
    mip.lp.AddVariable(-static_cast<double>(i + 1));
    mip.binary_vars.push_back(i);
    mip.fixed_vars.emplace_back(i, i % 2);
  }
  LpConstraint con;  // satisfied under the fixing: 1+1+1 <= 5
  for (int i = 0; i < 6; ++i) con.terms.emplace_back(i, 1.0);
  con.rel = LpRelation::kLe;
  con.rhs = 5.0;
  mip.lp.AddConstraint(std::move(con));

  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.lp_pivots, 0);
  EXPECT_NEAR(r.objective, -(2.0 + 4.0 + 6.0), 1e-9);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.values[static_cast<size_t>(i)], i % 2, 1e-12) << i;
  }
}

TEST(PresolveTest, FullyFixedInfeasibilityDetectedWithoutPivots) {
  // The fixing violates the row: presolve's empty-row check must catch
  // it — no simplex run, no false feasibility.
  MipProblem mip;
  for (int i = 0; i < 3; ++i) {
    mip.lp.AddVariable(-1.0);
    mip.binary_vars.push_back(i);
    mip.fixed_vars.emplace_back(i, 1);
  }
  LpConstraint con;
  for (int i = 0; i < 3; ++i) con.terms.emplace_back(i, 1.0);
  con.rel = LpRelation::kLe;
  con.rhs = 2.0;  // but the fixing sums to 3
  mip.lp.AddConstraint(std::move(con));

  BnbResult r = SolveBinaryMip(mip);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.lp_pivots, 0);
}

TEST(PresolveTest, SubstitutionMatchesBruteForceUnderRandomFixings) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    const int n = 10;
    MipProblem mip;
    std::vector<double> costs;
    for (int i = 0; i < n; ++i) {
      double c = rng.UniformDouble(-10.0, 2.0);
      costs.push_back(c);
      mip.lp.AddVariable(c);
      mip.binary_vars.push_back(i);
    }
    std::vector<LpConstraint> cons;
    for (int c = 0; c < 4; ++c) {
      LpConstraint con;
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.6)) {
          con.terms.emplace_back(i, rng.UniformDouble(0.5, 4.0));
        }
      }
      if (con.terms.empty()) con.terms.emplace_back(0, 1.0);
      con.rel = LpRelation::kLe;
      con.rhs = rng.UniformDouble(4.0, 12.0);
      cons.push_back(con);
      mip.lp.AddConstraint(std::move(con));
    }
    // Random fixings: a third of the variables pinned to 0 or 1.
    std::vector<int> fix(n, -1);
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.33)) {
        fix[static_cast<size_t>(i)] = rng.Bernoulli(0.5) ? 1 : 0;
        mip.fixed_vars.emplace_back(i, fix[static_cast<size_t>(i)]);
      }
    }

    // Brute force over assignments consistent with the fixings.
    double best = std::numeric_limits<double>::infinity();
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool consistent = true;
      for (int i = 0; i < n; ++i) {
        int bit = (mask >> i) & 1;
        consistent &= fix[static_cast<size_t>(i)] < 0 ||
                      fix[static_cast<size_t>(i)] == bit;
      }
      if (!consistent) continue;
      bool ok = true;
      for (const LpConstraint& con : cons) {
        double lhs = 0.0;
        for (auto [v, coef] : con.terms) {
          if (mask & (1 << v)) lhs += coef;
        }
        ok &= lhs <= con.rhs + 1e-9;
      }
      if (!ok) continue;
      double obj = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) obj += costs[static_cast<size_t>(i)];
      }
      best = std::min(best, obj);
    }

    BnbResult r = SolveBinaryMip(mip);
    if (!std::isfinite(best)) {
      EXPECT_FALSE(r.feasible) << "seed " << seed;
      continue;
    }
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(r.objective, best, 1e-6) << "seed " << seed;
    for (int i = 0; i < n; ++i) {
      if (fix[static_cast<size_t>(i)] >= 0) {
        EXPECT_NEAR(r.values[static_cast<size_t>(i)],
                    fix[static_cast<size_t>(i)], 1e-12);
      }
    }
  }
}

TEST(PresolveTest, ForcingRowsEraseVetoedAtomColumns) {
  // CoPhy-shaped veto: y = 0 plus the aggregated link row
  // x1 + x2 - y <= 0 must pin both atom columns to zero by propagation,
  // leaving only the index-free atom — the root LP is trivial and
  // integral, so the solve is a single presolved node.
  MipProblem mip;
  int x0 = mip.lp.AddVariable(10.0);  // index-free atom
  int x1 = mip.lp.AddVariable(3.0);   // atoms using index y
  int x2 = mip.lp.AddVariable(4.0);
  int y = mip.lp.AddVariable(1.0);
  for (int v : {x0, x1, x2, y}) mip.binary_vars.push_back(v);
  LpConstraint eq;  // one atom per query
  eq.terms = {{x0, 1.0}, {x1, 1.0}, {x2, 1.0}};
  eq.rel = LpRelation::kEq;
  eq.rhs = 1.0;
  mip.lp.AddConstraint(std::move(eq));
  LpConstraint link;
  link.terms = {{x1, 1.0}, {x2, 1.0}, {y, -1.0}};
  link.rel = LpRelation::kLe;
  link.rhs = 0.0;
  mip.lp.AddConstraint(std::move(link));
  mip.fixed_vars.emplace_back(y, 0);  // veto

  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_LE(r.nodes_explored, 1);  // root LP already integral
  EXPECT_LE(r.lp_pivots, 6);       // one var left (x0): no branching LPs
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.values[static_cast<size_t>(x0)], 1.0, 1e-9);
  EXPECT_NEAR(r.values[static_cast<size_t>(x1)], 0.0, 1e-12);
  EXPECT_NEAR(r.values[static_cast<size_t>(x2)], 0.0, 1e-12);
}

TEST(PresolveTest, ForcingRowConflictWithPinIsInfeasibleWithoutPivots) {
  // Pinning an atom that needs a vetoed index: the link row substitutes
  // to 1 <= 0, which forcing-row propagation rejects before any simplex.
  MipProblem mip;
  int x1 = mip.lp.AddVariable(3.0);
  int y = mip.lp.AddVariable(1.0);
  mip.binary_vars = {x1, y};
  LpConstraint link;
  link.terms = {{x1, 1.0}, {y, -1.0}};
  link.rel = LpRelation::kLe;
  link.rhs = 0.0;
  mip.lp.AddConstraint(std::move(link));
  mip.fixed_vars.emplace_back(x1, 1);
  mip.fixed_vars.emplace_back(y, 0);

  BnbResult r = SolveBinaryMip(mip);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.lp_pivots, 0);
}

TEST(PresolveTest, ForcingRowsMatchBruteForceOnLinkStructures) {
  // Random CoPhy-shaped instances (eq rows, link rows, vetoes): the
  // propagated solve must agree exactly with enumeration.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 977);
    const int num_idx = 3;
    const int num_q = 3;
    MipProblem mip;
    std::vector<int> yvar;
    for (int i = 0; i < num_idx; ++i) {
      yvar.push_back(mip.lp.AddVariable(rng.UniformDouble(0.1, 1.0)));
      mip.binary_vars.push_back(yvar.back());
    }
    std::vector<LpConstraint> cons;
    std::vector<int> xvar;
    std::vector<std::vector<int>> uses;  // per x: indexes it needs
    for (int q = 0; q < num_q; ++q) {
      LpConstraint eq;
      for (int a = 0; a < 3; ++a) {
        int x = mip.lp.AddVariable(rng.UniformDouble(1.0, 9.0));
        mip.binary_vars.push_back(x);
        xvar.push_back(x);
        std::vector<int> u;
        if (a > 0) {  // atom 0 is index-free
          for (int i = 0; i < num_idx; ++i) {
            if (rng.Bernoulli(0.5)) u.push_back(i);
          }
        }
        uses.push_back(u);
        eq.terms.emplace_back(x, 1.0);
      }
      eq.rel = LpRelation::kEq;
      eq.rhs = 1.0;
      cons.push_back(eq);
      mip.lp.AddConstraint(std::move(eq));
    }
    for (int i = 0; i < num_idx; ++i) {
      LpConstraint link;
      for (size_t xi = 0; xi < xvar.size(); ++xi) {
        const std::vector<int>& u = uses[xi];
        if (std::find(u.begin(), u.end(), i) != u.end()) {
          link.terms.emplace_back(xvar[xi], 1.0);
        }
      }
      if (link.terms.empty()) continue;
      link.terms.emplace_back(yvar[static_cast<size_t>(i)],
                              -static_cast<double>(link.terms.size()));
      link.rel = LpRelation::kLe;
      link.rhs = 0.0;
      cons.push_back(link);
      mip.lp.AddConstraint(std::move(link));
    }
    int vetoed = static_cast<int>(seed) % num_idx;
    mip.fixed_vars.emplace_back(yvar[static_cast<size_t>(vetoed)], 0);

    const int n = mip.lp.num_vars;
    double best = std::numeric_limits<double>::infinity();
    for (int mask = 0; mask < (1 << n); ++mask) {
      if (mask & (1 << yvar[static_cast<size_t>(vetoed)])) continue;
      bool ok = true;
      for (const LpConstraint& con : cons) {
        double lhs = 0.0;
        for (auto [v, coef] : con.terms) {
          if (mask & (1 << v)) lhs += coef;
        }
        ok &= con.rel == LpRelation::kEq ? std::abs(lhs - con.rhs) < 1e-9
                                         : lhs <= con.rhs + 1e-9;
      }
      if (!ok) continue;
      double obj = 0.0;
      for (int v = 0; v < n; ++v) {
        if (mask & (1 << v)) obj += mip.lp.objective[static_cast<size_t>(v)];
      }
      best = std::min(best, obj);
    }

    BnbResult r = SolveBinaryMip(mip);
    ASSERT_TRUE(std::isfinite(best)) << "seed " << seed;
    ASSERT_TRUE(r.feasible) << "seed " << seed;
    EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(r.objective, best, 1e-6) << "seed " << seed;
  }
}

// --- Warm starts ---

TEST(SimplexTest, WarmBasisReproducesOptimumWithFewerPivots) {
  LpProblem p;
  int x = p.AddVariable(-3.0);
  int y = p.AddVariable(-5.0);
  p.AddConstraint({{{x, 1.0}}, LpRelation::kLe, 4.0});
  p.AddConstraint({{{y, 2.0}}, LpRelation::kLe, 12.0});
  p.AddConstraint({{{x, 3.0}, {y, 2.0}}, LpRelation::kLe, 18.0});
  LpSolution cold = SolveLp(p);
  ASSERT_TRUE(cold.optimal());
  ASSERT_GT(cold.pivots, 0);
  ASSERT_EQ(cold.basis.size(), p.constraints.size());

  LpSolution warm = SolveLp(p, {}, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_EQ(warm.objective, cold.objective);
  for (size_t i = 0; i < cold.values.size(); ++i) {
    EXPECT_EQ(warm.values[i], cold.values[i]) << "var " << i;
  }
  EXPECT_LE(warm.pivots, cold.pivots);
}

TEST(SimplexTest, WarmBasisSurvivesRhsPerturbation) {
  // Warm-starting a NEIGHBOR problem (same rows, shifted rhs) must stay
  // correct: either the basis crash succeeds and phase 2 finishes, or
  // the solver falls back to a cold solve — both land on the optimum.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem p;
    int n = 4;
    for (int i = 0; i < n; ++i) p.AddVariable(rng.UniformDouble(-5.0, -0.5));
    for (int c = 0; c < 3; ++c) {
      LpConstraint con;
      for (int i = 0; i < n; ++i) {
        con.terms.emplace_back(i, rng.UniformDouble(0.5, 3.0));
      }
      con.rel = LpRelation::kLe;
      con.rhs = rng.UniformDouble(2.0, 10.0);
      p.AddConstraint(std::move(con));
    }
    LpSolution cold = SolveLp(p);
    ASSERT_TRUE(cold.optimal());

    LpProblem shifted = p;
    for (LpConstraint& con : shifted.constraints) {
      con.rhs *= rng.UniformDouble(0.8, 1.2);
    }
    LpSolution reference = SolveLp(shifted);
    LpSolution warm = SolveLp(shifted, {}, &cold.basis);
    ASSERT_EQ(warm.status, reference.status) << "trial " << trial;
    if (reference.optimal()) {
      EXPECT_NEAR(warm.objective, reference.objective, 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(BnbTest, WarmStartReproducesColdSolve) {
  Rng rng(23);
  MipProblem mip;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    mip.lp.AddVariable(-rng.UniformDouble(1.0, 10.0));
    mip.binary_vars.push_back(i);
  }
  for (int c = 0; c < 3; ++c) {
    LpConstraint con;
    for (int i = 0; i < n; ++i) {
      con.terms.emplace_back(i, rng.UniformDouble(0.5, 4.0));
    }
    con.rel = LpRelation::kLe;
    con.rhs = rng.UniformDouble(5.0, 12.0);
    mip.lp.AddConstraint(std::move(con));
  }

  BnbResult cold = SolveBinaryMip(mip);
  ASSERT_TRUE(cold.feasible);
  ASSERT_TRUE(cold.proven_optimal);
  ASSERT_FALSE(cold.root_basis.empty());

  BnbWarmStart warm;
  warm.basis = cold.root_basis;
  warm.values = cold.values;
  warm.objective = cold.objective;
  BnbResult hot = SolveBinaryMip(mip, BnbOptions{}, nullptr, &warm);
  ASSERT_TRUE(hot.feasible);
  EXPECT_TRUE(hot.proven_optimal);
  EXPECT_EQ(hot.objective, cold.objective);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hot.values[static_cast<size_t>(i)],
              cold.values[static_cast<size_t>(i)])
        << "var " << i;
  }
  // The warm incumbent (the optimum) is available from node 0, so the
  // warm tree can never need MORE nodes than the cold one, which had no
  // incumbent at all until its own search found one. (Pivot counts are
  // not compared: an equally-optimal but different root basis can shift
  // branching ties by a handful of pivots either way.)
  EXPECT_LE(hot.nodes_explored, cold.nodes_explored);
}

TEST(BnbTest, WarmIncumbentInconsistentWithFixingsIsDiscarded) {
  // A cached incumbent that contradicts a new fixing (the veto case)
  // must be ignored, not trusted: the solve still lands on the true
  // optimum under the fixing.
  MipProblem mip;
  int a = mip.lp.AddVariable(-10.0);
  int b = mip.lp.AddVariable(-6.0);
  int c = mip.lp.AddVariable(-4.0);
  mip.lp.AddConstraint({{{a, 1.0}, {b, 1.0}, {c, 1.0}}, LpRelation::kLe, 2.0});
  mip.binary_vars = {a, b, c};
  BnbResult cold = SolveBinaryMip(mip);  // picks {a, b} = -16
  ASSERT_TRUE(cold.feasible);

  MipProblem vetoed = mip;
  vetoed.fixed_vars.emplace_back(a, 0);  // veto the best variable
  BnbWarmStart warm;
  warm.basis = cold.root_basis;
  warm.values = cold.values;  // has a = 1: contradicts the fixing
  warm.objective = cold.objective;
  BnbResult r = SolveBinaryMip(vetoed, BnbOptions{}, nullptr, &warm);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -10.0, 1e-6);  // {b, c}
  EXPECT_NEAR(r.values[static_cast<size_t>(a)], 0.0, 1e-12);
}

}  // namespace
}  // namespace dbdesign
