// LP simplex and branch & bound tests, including brute-force
// cross-validation on random binary programs.

#include <gtest/gtest.h>

#include <cmath>

#include "solver/bnb.h"
#include "solver/simplex.h"
#include "util/rng.h"

namespace dbdesign {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => min -3x -5y.
  // Optimum: x=2, y=6, obj=36.
  LpProblem p;
  int x = p.AddVariable(-3.0);
  int y = p.AddVariable(-5.0);
  p.AddConstraint({{{x, 1.0}}, LpRelation::kLe, 4.0});
  p.AddConstraint({{{y, 2.0}}, LpRelation::kLe, 12.0});
  p.AddConstraint({{{x, 3.0}, {y, 2.0}}, LpRelation::kLe, 18.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 6.0, 1e-6);
}

TEST(SimplexTest, EqualityAndGeConstraints) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2. Optimum x=8, y=2, obj=12.
  LpProblem p;
  int x = p.AddVariable(1.0);
  int y = p.AddVariable(2.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, LpRelation::kEq, 10.0});
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 3.0});
  p.AddConstraint({{{y, 1.0}}, LpRelation::kGe, 2.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 8.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpProblem p;
  int x = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 5.0});
  p.AddConstraint({{{x, 1.0}}, LpRelation::kLe, 3.0});
  EXPECT_EQ(SolveLp(p).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem p;
  int x = p.AddVariable(-1.0);  // maximize x with no upper bound
  p.AddConstraint({{{x, 1.0}}, LpRelation::kGe, 0.0});
  EXPECT_EQ(SolveLp(p).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  LpProblem p;
  int x = p.AddVariable(1.0);
  p.AddConstraint({{{x, -1.0}}, LpRelation::kLe, -5.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  LpProblem p;
  int x1 = p.AddVariable(-0.75);
  int x2 = p.AddVariable(150.0);
  int x3 = p.AddVariable(-0.02);
  int x4 = p.AddVariable(6.0);
  p.AddConstraint(
      {{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, LpRelation::kLe, 0.0});
  p.AddConstraint(
      {{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, LpRelation::kLe, 0.0});
  p.AddConstraint({{{x3, 1.0}}, LpRelation::kLe, 1.0});
  LpSolution s = SolveLp(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(SimplexTest, RandomLpsRespectConstraints) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    LpProblem p;
    int n = 3 + static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < n; ++i) {
      p.AddVariable(rng.UniformDouble(-5.0, 5.0));
    }
    int m = 2 + static_cast<int>(rng.UniformInt(0, 4));
    for (int c = 0; c < m; ++c) {
      LpConstraint con;
      for (int i = 0; i < n; ++i) {
        con.terms.emplace_back(i, rng.UniformDouble(0.1, 3.0));
      }
      con.rel = LpRelation::kLe;
      con.rhs = rng.UniformDouble(1.0, 20.0);
      p.AddConstraint(std::move(con));
    }
    LpSolution s = SolveLp(p);
    // All-positive coefficients with positive rhs: always feasible (0)
    // and bounded below only if some c_i < 0 ... objective may push some
    // variable up to a constraint; either way simplex must terminate
    // optimal (bounded: every var bounded by constraints).
    ASSERT_TRUE(s.optimal()) << "trial " << trial;
    for (size_t c = 0; c < p.constraints.size(); ++c) {
      double lhs = 0.0;
      for (auto [v, coef] : p.constraints[c].terms) {
        lhs += coef * s.values[static_cast<size_t>(v)];
      }
      EXPECT_LE(lhs, p.constraints[c].rhs + 1e-6);
    }
    for (double v : s.values) EXPECT_GE(v, -1e-9);
  }
}

// --- Branch & bound ---

TEST(BnbTest, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary). Optimum: a+b = 16.
  MipProblem mip;
  int a = mip.lp.AddVariable(-10.0);
  int b = mip.lp.AddVariable(-6.0);
  int c = mip.lp.AddVariable(-4.0);
  mip.lp.AddConstraint(
      {{{a, 1.0}, {b, 1.0}, {c, 1.0}}, LpRelation::kLe, 2.0});
  mip.binary_vars = {a, b, c};
  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<size_t>(a)], 1.0, 1e-6);
  EXPECT_NEAR(r.values[static_cast<size_t>(c)], 0.0, 1e-6);
}

TEST(BnbTest, FractionalLpForcedIntegral) {
  // Knapsack where LP relaxation is fractional:
  // max 5a + 4b s.t. 3a + 2b <= 4. LP: a=1,b=0.5 obj 7; IP best: b+... a=0,b=1
  // (weight 2): 4; or a=1 (weight 3): 5 -> optimum 5.
  MipProblem mip;
  int a = mip.lp.AddVariable(-5.0);
  int b = mip.lp.AddVariable(-4.0);
  mip.lp.AddConstraint({{{a, 3.0}, {b, 2.0}}, LpRelation::kLe, 4.0});
  mip.binary_vars = {a, b};
  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-6);
  EXPECT_LE(r.gap(), 1e-6);
}

TEST(BnbTest, InfeasibleMip) {
  MipProblem mip;
  int a = mip.lp.AddVariable(1.0);
  mip.lp.AddConstraint({{{a, 1.0}}, LpRelation::kGe, 2.0});  // a>=2 vs a<=1
  mip.binary_vars = {a};
  BnbResult r = SolveBinaryMip(mip);
  EXPECT_FALSE(r.feasible);
}

TEST(BnbTest, HeuristicProvidesIncumbent) {
  MipProblem mip;
  int a = mip.lp.AddVariable(-3.0);
  int b = mip.lp.AddVariable(-2.0);
  mip.lp.AddConstraint({{{a, 2.0}, {b, 2.0}}, LpRelation::kLe, 3.0});
  mip.binary_vars = {a, b};
  int heuristic_calls = 0;
  auto heuristic = [&](const std::vector<double>& /*lp*/, std::vector<double>* out,
                       double* obj) {
    ++heuristic_calls;
    *out = {1.0, 0.0};
    *obj = -3.0;
    return true;
  };
  BnbResult r = SolveBinaryMip(mip, BnbOptions{}, heuristic);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(heuristic_calls, 0);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(BnbTest, NodeBudgetStillReportsBoundAndIncumbent) {
  // Tight budget: must stay feasible with a valid (possibly loose) gap.
  Rng rng(7);
  MipProblem mip;
  const int n = 14;
  for (int i = 0; i < n; ++i) {
    mip.lp.AddVariable(-rng.UniformDouble(1.0, 10.0));
    mip.binary_vars.push_back(i);
  }
  LpConstraint budget;
  for (int i = 0; i < n; ++i) {
    budget.terms.emplace_back(i, rng.UniformDouble(1.0, 5.0));
  }
  budget.rel = LpRelation::kLe;
  budget.rhs = 8.0;
  mip.lp.AddConstraint(std::move(budget));

  BnbOptions opts;
  opts.max_nodes = 3;
  auto greedy = [&](const std::vector<double>& /*lp*/, std::vector<double>* out,
                    double* obj) {
    out->assign(n, 0.0);
    *obj = 0.0;
    return true;  // trivial feasible: build nothing
  };
  BnbResult r = SolveBinaryMip(mip, opts, greedy);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.lower_bound, r.objective + 1e-9);
  EXPECT_GE(r.gap(), 0.0);
}

struct RandomMipCase {
  uint64_t seed;
  int vars;
  int cons;
};

class BnbRandomTest : public ::testing::TestWithParam<RandomMipCase> {};

TEST_P(BnbRandomTest, MatchesBruteForce) {
  const RandomMipCase& param = GetParam();
  Rng rng(param.seed);
  MipProblem mip;
  std::vector<double> costs;
  for (int i = 0; i < param.vars; ++i) {
    double c = rng.UniformDouble(-10.0, 2.0);
    costs.push_back(c);
    mip.lp.AddVariable(c);
    mip.binary_vars.push_back(i);
  }
  std::vector<LpConstraint> cons;
  for (int c = 0; c < param.cons; ++c) {
    LpConstraint con;
    for (int i = 0; i < param.vars; ++i) {
      if (rng.Bernoulli(0.7)) {
        con.terms.emplace_back(i, rng.UniformDouble(0.5, 4.0));
      }
    }
    if (con.terms.empty()) con.terms.emplace_back(0, 1.0);
    con.rel = LpRelation::kLe;
    con.rhs = rng.UniformDouble(2.0, 10.0);
    cons.push_back(con);
    mip.lp.AddConstraint(std::move(con));
  }

  // Brute force over all 2^n assignments.
  double best = 0.0;  // all-zero is feasible for <= with positive coefs
  for (int mask = 0; mask < (1 << param.vars); ++mask) {
    double obj = 0.0;
    bool ok = true;
    for (const LpConstraint& con : cons) {
      double lhs = 0.0;
      for (auto [v, coef] : con.terms) {
        if (mask & (1 << v)) lhs += coef;
      }
      if (lhs > con.rhs + 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int i = 0; i < param.vars; ++i) {
      if (mask & (1 << i)) obj += costs[static_cast<size_t>(i)];
    }
    best = std::min(best, obj);
  }

  BnbResult r = SolveBinaryMip(mip);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal) << "nodes=" << r.nodes_explored;
  EXPECT_NEAR(r.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbRandomTest,
                         ::testing::Values(RandomMipCase{1, 8, 3},
                                           RandomMipCase{2, 10, 4},
                                           RandomMipCase{3, 12, 5},
                                           RandomMipCase{4, 12, 2},
                                           RandomMipCase{5, 14, 6},
                                           RandomMipCase{6, 9, 8}));

}  // namespace
}  // namespace dbdesign
