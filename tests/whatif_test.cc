// What-if component tests (paper §3.1): hypothetical indexes and
// partitions change estimated costs without touching the database;
// join knobs steer plans.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "whatif/whatif.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 3;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static IndexDef Idx(const char* table, std::vector<const char*> cols) {
    TableId t = db_->catalog().FindTable(table);
    IndexDef idx;
    idx.table = t;
    for (const char* c : cols) {
      idx.columns.push_back(db_->catalog().table(t).FindColumn(c));
    }
    return idx;
  }

  static Database* db_;
};

Database* WhatIfTest::db_ = nullptr;

TEST_F(WhatIfTest, HypotheticalIndexReducesCostWithoutBuilding) {
  WhatIfOptimizer whatif(*db_);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 20 AND 20.4");
  double before = whatif.Cost(q);
  ASSERT_TRUE(whatif.CreateHypotheticalIndex(Idx("photoobj", {"ra"})).ok());
  double after = whatif.Cost(q);
  EXPECT_LT(after, before * 0.5);
  // Nothing was materialized.
  EXPECT_TRUE(db_->MaterializedIndexes().empty());
}

TEST_F(WhatIfTest, DuplicateHypotheticalIndexRejected) {
  WhatIfOptimizer whatif(*db_);
  ASSERT_TRUE(whatif.CreateHypotheticalIndex(Idx("photoobj", {"dec"})).ok());
  Status dup = whatif.CreateHypotheticalIndex(Idx("photoobj", {"dec"}));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(WhatIfTest, InvalidIndexRejected) {
  WhatIfOptimizer whatif(*db_);
  IndexDef bad;
  bad.table = 999;
  bad.columns = {0};
  EXPECT_EQ(whatif.CreateHypotheticalIndex(bad).code(),
            StatusCode::kInvalidArgument);
  IndexDef empty_cols;
  empty_cols.table = 0;
  EXPECT_EQ(whatif.CreateHypotheticalIndex(empty_cols).code(),
            StatusCode::kInvalidArgument);
  IndexDef bad_col;
  bad_col.table = 0;
  bad_col.columns = {999};
  EXPECT_EQ(whatif.CreateHypotheticalIndex(bad_col).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WhatIfTest, DropAndResetRestoreBaseline) {
  WhatIfOptimizer whatif(*db_);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 20 AND 20.4");
  double base = whatif.Cost(q);
  IndexDef idx = Idx("photoobj", {"ra"});
  ASSERT_TRUE(whatif.CreateHypotheticalIndex(idx).ok());
  ASSERT_TRUE(whatif.DropHypotheticalIndex(idx).ok());
  EXPECT_DOUBLE_EQ(whatif.Cost(q), base);
  ASSERT_TRUE(whatif.CreateHypotheticalIndex(idx).ok());
  whatif.ResetHypothetical();
  EXPECT_DOUBLE_EQ(whatif.Cost(q), base);
  EXPECT_EQ(whatif.DropHypotheticalIndex(idx).code(), StatusCode::kNotFound);
}

TEST_F(WhatIfTest, HypotheticalIndexSizeIsHonest) {
  // The paper criticizes tools that assume zero-size what-if indexes.
  WhatIfOptimizer whatif(*db_);
  IndexSizeEstimate sz = whatif.HypotheticalIndexSize(Idx("photoobj", {"ra"}));
  EXPECT_GT(sz.total_pages(), 5.0);  // 6000 rows cannot fit in 5 pages
  IndexSizeEstimate sz3 = whatif.HypotheticalIndexSize(
      Idx("photoobj", {"ra", "dec", "psfmag_r"}));
  EXPECT_GT(sz3.total_pages(), sz.total_pages());
}

TEST_F(WhatIfTest, HypotheticalVerticalPartitioning) {
  WhatIfOptimizer whatif(*db_);
  BoundQuery q = Q("SELECT objid, ra FROM photoobj WHERE ra > 350");
  double wide = whatif.Cost(q);

  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);
  VerticalFragment narrow;
  narrow.columns = {def.FindColumn("objid"), def.FindColumn("ra")};
  std::sort(narrow.columns.begin(), narrow.columns.end());
  VerticalFragment rest;
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    if (!narrow.Covers(c)) rest.columns.push_back(c);
  }
  VerticalPartitioning vp;
  vp.table = photo;
  vp.fragments = {narrow, rest};
  whatif.SetHypotheticalVerticalPartitioning(vp);
  EXPECT_LT(whatif.Cost(q), wide * 0.5);

  whatif.ClearHypotheticalVerticalPartitioning(photo);
  EXPECT_DOUBLE_EQ(whatif.Cost(q), wide);
}

TEST_F(WhatIfTest, HypotheticalHorizontalPartitioning) {
  WhatIfOptimizer whatif(*db_);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE mjd BETWEEN 51050 AND 51080");
  double base = whatif.Cost(q);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  HorizontalPartitioning hp;
  hp.table = photo;
  hp.column = db_->catalog().table(photo).FindColumn("mjd");
  for (int b = 1; b < 12; ++b) {
    hp.bounds.push_back(Value(int64_t{51000} + b * 40));
  }
  whatif.SetHypotheticalHorizontalPartitioning(hp);
  EXPECT_LT(whatif.Cost(q), base);
  whatif.ClearHypotheticalHorizontalPartitioning(photo);
  EXPECT_DOUBLE_EQ(whatif.Cost(q), base);
}

TEST_F(WhatIfTest, JoinKnobsSteerPlans) {
  WhatIfOptimizer whatif(*db_);
  BoundQuery q = Q(
      "SELECT p.objid FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid");
  PlanResult base = whatif.Plan(q);
  ASSERT_NE(base.root, nullptr);

  // Disabling the method the optimizer picked must change the plan (or
  // at least not reduce cost).
  whatif.knobs().enable_hashjoin = false;
  whatif.knobs().enable_mergejoin = false;
  PlanResult restricted = whatif.Plan(q);
  ASSERT_NE(restricted.root, nullptr);
  EXPECT_GE(restricted.cost, base.cost * 0.9999);
}

TEST_F(WhatIfTest, WorkloadCostAggregatesWeights) {
  WhatIfOptimizer whatif(*db_);
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra < 5"), 2.0);
  w.Add(Q("SELECT objid FROM photoobj WHERE dec > 80"), 3.0);
  double c0 = whatif.CostUnder(w.queries[0], PhysicalDesign{});
  double c1 = whatif.CostUnder(w.queries[1], PhysicalDesign{});
  EXPECT_NEAR(whatif.WorkloadCostUnder(w, PhysicalDesign{}),
              2.0 * c0 + 3.0 * c1, 1e-6);
}

TEST_F(WhatIfTest, OptimizerCallCounterAdvances) {
  WhatIfOptimizer whatif(*db_);
  whatif.ResetCallCount();
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra < 5");
  whatif.Cost(q);
  whatif.Cost(q);
  EXPECT_EQ(whatif.num_optimizer_calls(), 2u);
}

}  // namespace
}  // namespace dbdesign
