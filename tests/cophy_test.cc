// CoPhy advisor tests: candidate generation, atom construction, BIP
// optimality vs exhaustive search, budget compliance, and dominance
// over the greedy baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class CoPhyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 5;
    db_ = new Database(BuildSdssDatabase(cfg));
    workload_ = new Workload(
        GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 14, 71));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete workload_;
    db_ = nullptr;
    workload_ = nullptr;
  }

  static Database* db_;
  static Workload* workload_;
};

Database* CoPhyTest::db_ = nullptr;
Workload* CoPhyTest::workload_ = nullptr;

TEST_F(CoPhyTest, CandidatesCoverPredicateColumns) {
  std::vector<CandidateIndex> cands = GenerateCandidates(*db_, *workload_);
  ASSERT_FALSE(cands.empty());
  // Every candidate must be structurally valid and sized.
  std::set<std::string> keys;
  for (const CandidateIndex& c : cands) {
    EXPECT_GE(c.index.table, 0);
    EXPECT_FALSE(c.index.columns.empty());
    EXPECT_GT(c.size_pages, 0.0);
    EXPECT_GE(c.relevant_queries, 1);
    EXPECT_TRUE(keys.insert(c.index.Key()).second) << "duplicate candidate";
  }
  // The workload contains cone searches: an ra (or ra,dec) candidate on
  // photoobj must be present.
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  bool has_ra = false;
  for (const CandidateIndex& c : cands) {
    has_ra |= c.index.table == photo && c.index.columns[0] == ra;
  }
  EXPECT_TRUE(has_ra);
}

TEST_F(CoPhyTest, CandidateCapRespected) {
  CandidateOptions opts;
  opts.max_candidates = 10;
  std::vector<CandidateIndex> cands =
      GenerateCandidates(*db_, *workload_, opts);
  EXPECT_LE(cands.size(), 10u);
}

TEST_F(CoPhyTest, AtomsIncludeIndexFreeAnchor) {
  CoPhyAdvisor advisor(*db_);
  std::vector<CandidateIndex> cands = GenerateCandidates(*db_, *workload_);
  for (const BoundQuery& q : workload_->queries) {
    std::vector<CoPhyAtom> atoms = advisor.BuildAtoms(q, cands);
    ASSERT_FALSE(atoms.empty()) << q.ToSql(db_->catalog());
    bool has_free = false;
    for (const CoPhyAtom& a : atoms) {
      has_free |= a.used.empty();
      EXPECT_GT(a.cost, 0.0);
      for (int i : a.used) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, static_cast<int>(cands.size()));
      }
    }
    EXPECT_TRUE(has_free) << "no index-free atom for "
                          << q.ToSql(db_->catalog());
  }
}

TEST_F(CoPhyTest, AtomCostsLowerBoundedByBestPlan) {
  // The cheapest atom must match INUM's cost under the all-candidates
  // design (same plan space).
  CoPhyAdvisor advisor(*db_);
  std::vector<CandidateIndex> cands = GenerateCandidates(*db_, *workload_);
  PhysicalDesign all;
  for (const CandidateIndex& c : cands) all.AddIndex(c.index);
  for (const BoundQuery& q : workload_->queries) {
    std::vector<CoPhyAtom> atoms = advisor.BuildAtoms(q, cands);
    double best_atom = std::numeric_limits<double>::infinity();
    for (const CoPhyAtom& a : atoms) best_atom = std::min(best_atom, a.cost);
    double inum_cost = advisor.inum().Cost(q, all);
    EXPECT_NEAR(best_atom / inum_cost, 1.0, 0.05) << q.ToSql(db_->catalog());
  }
}

TEST_F(CoPhyTest, RecommendationImprovesAndFitsBudget) {
  CoPhyOptions opts;
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  opts.storage_budget_pages = data_pages;  // 1x data size
  CoPhyAdvisor advisor(*db_, CostParams{}, opts);
  IndexRecommendation rec = advisor.Recommend(*workload_);

  EXPECT_FALSE(rec.indexes.empty());
  EXPECT_LT(rec.recommended_cost, rec.base_cost);
  EXPECT_GT(rec.improvement(), 0.2) << "expected >20% improvement on the "
                                       "selection-heavy SDSS mix";
  EXPECT_LE(rec.total_size_pages, opts.storage_budget_pages + 1e-6);
  EXPECT_GE(rec.gap, 0.0);
  EXPECT_LE(rec.lower_bound, rec.recommended_cost + 1e-6);

  // The recommendation's claimed cost must agree with an independent
  // INUM evaluation of the recommended design.
  PhysicalDesign design;
  for (const IndexDef& idx : rec.indexes) design.AddIndex(idx);
  double check = advisor.inum().WorkloadCost(*workload_, design);
  EXPECT_NEAR(check / rec.recommended_cost, 1.0, 0.05);
}

TEST_F(CoPhyTest, TightBudgetYieldsSmallerConfiguration) {
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  CoPhyOptions big;
  big.storage_budget_pages = 2.0 * data_pages;
  CoPhyOptions small;
  small.storage_budget_pages = 0.1 * data_pages;

  CoPhyAdvisor a_big(*db_, CostParams{}, big);
  CoPhyAdvisor a_small(*db_, CostParams{}, small);
  IndexRecommendation r_big = a_big.Recommend(*workload_);
  IndexRecommendation r_small = a_small.Recommend(*workload_);

  EXPECT_LE(r_small.total_size_pages, small.storage_budget_pages + 1e-6);
  // More storage can only help the optimum.
  EXPECT_LE(r_big.recommended_cost, r_small.recommended_cost + 1e-6);
}

TEST_F(CoPhyTest, MatchesExhaustiveOnSmallInstance) {
  // Small candidate pool + tiny workload: compare the BIP against brute
  // force over all candidate subsets within budget.
  Workload small;
  for (int i = 0; i < 5; ++i) small.Add(workload_->queries[i]);
  CandidateOptions copts;
  copts.max_candidates = 8;
  copts.covering_candidates = false;
  std::vector<CandidateIndex> cands = GenerateCandidates(*db_, small, copts);
  ASSERT_LE(cands.size(), 8u);

  double budget = 0.0;
  for (const CandidateIndex& c : cands) budget += c.size_pages;
  budget *= 0.5;

  CoPhyOptions opts;
  opts.storage_budget_pages = budget;
  opts.candidates = copts;
  CoPhyAdvisor advisor(*db_, CostParams{}, opts);
  IndexRecommendation rec = advisor.RecommendWithCandidates(small, cands);

  // Brute force with the same cost oracle (INUM).
  double best = std::numeric_limits<double>::infinity();
  int n = static_cast<int>(cands.size());
  for (int mask = 0; mask < (1 << n); ++mask) {
    double pages = 0.0;
    PhysicalDesign d;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) {
        pages += cands[static_cast<size_t>(i)].size_pages;
        d.AddIndex(cands[static_cast<size_t>(i)].index);
      }
    }
    if (pages > budget) continue;
    best = std::min(best, advisor.inum().WorkloadCost(small, d));
  }
  EXPECT_NEAR(rec.recommended_cost / best, 1.0, 0.05)
      << "CoPhy " << rec.recommended_cost << " vs exhaustive " << best;
}

TEST_F(CoPhyTest, NeverWorseThanGreedyOnSharedCandidates) {
  std::vector<CandidateIndex> cands = GenerateCandidates(*db_, *workload_);
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  for (double factor : {0.15, 0.5, 1.0}) {
    CoPhyOptions copts;
    copts.storage_budget_pages = factor * data_pages;
    CoPhyAdvisor cophy(*db_, CostParams{}, copts);
    IndexRecommendation rec = cophy.RecommendWithCandidates(*workload_, cands);

    GreedyOptions gopts;
    gopts.storage_budget_pages = factor * data_pages;
    GreedyAdvisor greedy(*db_, CostParams{}, gopts);
    GreedyResult g = greedy.RecommendWithCandidates(*workload_, cands);

    // Evaluate both recommendations with one oracle.
    PhysicalDesign cophy_design;
    for (const IndexDef& i : rec.indexes) cophy_design.AddIndex(i);
    PhysicalDesign greedy_design;
    for (const IndexDef& i : g.indexes) greedy_design.AddIndex(i);
    double cophy_cost = cophy.inum().WorkloadCost(*workload_, cophy_design);
    double greedy_cost = cophy.inum().WorkloadCost(*workload_, greedy_design);
    EXPECT_LE(cophy_cost, greedy_cost * 1.02)
        << "budget factor " << factor;
  }
}

TEST_F(CoPhyTest, GreedyRespectsBudgetAndImproves) {
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  GreedyOptions opts;
  opts.storage_budget_pages = 0.5 * data_pages;
  GreedyAdvisor greedy(*db_, CostParams{}, opts);
  GreedyResult r = greedy.Recommend(*workload_);
  EXPECT_FALSE(r.indexes.empty());
  EXPECT_LT(r.final_cost, r.base_cost);
  EXPECT_LE(r.total_size_pages, opts.storage_budget_pages + 1e-6);
  EXPECT_GT(r.cost_evaluations, 0u);
}

TEST_F(CoPhyTest, TimeQualityKnob) {
  // A starved node budget must still produce a feasible recommendation
  // with a (possibly loose) reported gap.
  CoPhyOptions opts;
  opts.bnb.max_nodes = 1;
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  opts.storage_budget_pages = 0.3 * data_pages;
  CoPhyAdvisor advisor(*db_, CostParams{}, opts);
  IndexRecommendation rec = advisor.Recommend(*workload_);
  EXPECT_LE(rec.recommended_cost, rec.base_cost + 1e-6);
  EXPECT_GE(rec.gap, 0.0);
}

}  // namespace
}  // namespace dbdesign
