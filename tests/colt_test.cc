// COLT tests: epoch mechanics, what-if budget, adaptation to drift,
// hysteresis, enable/disable, and the build/drop/alert event stream.

#include <gtest/gtest.h>

#include "colt/colt.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class ColtTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 23;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* ColtTest::db_ = nullptr;

TEST_F(ColtTest, BuildsIndexForRepeatedSelectiveQueries) {
  ColtOptions opts;
  opts.epoch_length = 10;
  ColtTuner tuner(*db_, CostParams{}, opts);

  Rng rng(31);
  std::vector<BoundQuery> stream;
  for (int i = 0; i < 60; ++i) {
    stream.push_back(
        GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng));
    stream.back().id = i;
  }
  for (const BoundQuery& q : stream) tuner.OnQuery(q);

  EXPECT_FALSE(tuner.current_design().indexes().empty())
      << "repeated cone searches must trigger an index build";
  bool built_ra = false;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  ColumnId dec = db_->catalog().table(photo).FindColumn("dec");
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    EXPECT_EQ(idx.columns.size(), 1u) << "COLT proposes single-column only";
    built_ra |= idx.table == photo &&
                (idx.columns[0] == ra || idx.columns[0] == dec);
  }
  EXPECT_TRUE(built_ra);
  EXPECT_GT(tuner.cumulative_build_cost(), 0.0);
  EXPECT_EQ(tuner.epochs().size(), 6u);
}

TEST_F(ColtTest, LaterEpochsCheaperThanBaseline) {
  ColtOptions opts;
  opts.epoch_length = 15;
  ColtTuner tuner(*db_, CostParams{}, opts);
  Rng rng(37);
  for (int i = 0; i < 90; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  ASSERT_GE(tuner.epochs().size(), 4u);
  const ColtEpochReport& late = tuner.epochs().back();
  EXPECT_LT(late.observed_cost, late.baseline_cost * 0.8)
      << "tuned design should beat the untuned baseline late in the run";
}

TEST_F(ColtTest, RespectsWhatIfBudget) {
  ColtOptions opts;
  opts.epoch_length = 10;
  opts.whatif_budget_per_epoch = 3;
  ColtTuner tuner(*db_, CostParams{}, opts);
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kColorCut, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  for (const ColtEpochReport& e : tuner.epochs()) {
    EXPECT_LE(e.whatif_calls, 3);
  }
}

TEST_F(ColtTest, DisabledTunerObservesButNeverChanges) {
  ColtOptions opts;
  opts.epoch_length = 10;
  ColtTuner tuner(*db_, CostParams{}, opts);
  tuner.SetEnabled(false);
  Rng rng(43);
  for (int i = 0; i < 40; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  EXPECT_TRUE(tuner.current_design().indexes().empty());
  EXPECT_TRUE(tuner.events().empty());
  EXPECT_EQ(tuner.cumulative_build_cost(), 0.0);
  EXPECT_EQ(tuner.epochs().size(), 4u);
}

TEST_F(ColtTest, HysteresisBlocksBuildsForFleetingBenefit) {
  ColtOptions opts;
  opts.epoch_length = 10;
  opts.build_hysteresis = 1e9;  // effectively: never worth building
  ColtTuner tuner(*db_, CostParams{}, opts);
  Rng rng(47);
  for (int i = 0; i < 40; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  EXPECT_TRUE(tuner.current_design().indexes().empty());
  // Alerts may still fire (the DBA decides), but no builds.
  for (const ColtEvent& e : tuner.events()) {
    EXPECT_NE(e.type, ColtEvent::Type::kBuild);
  }
}

TEST_F(ColtTest, AdaptsToDriftAndDropsStaleIndexes) {
  ColtOptions opts;
  opts.epoch_length = 12;
  opts.amortization_epochs = 3.0;
  opts.build_hysteresis = 1.0;
  opts.drop_fraction = 0.5;
  ColtTuner tuner(*db_, CostParams{}, opts);

  std::vector<BoundQuery> stream = GenerateDriftingStream(
      *db_, {TemplateMix::PhaseSelections(), TemplateMix::PhaseAggregates()},
      120, 53);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");

  bool ra_built_in_phase1 = false;
  for (int i = 0; i < 120; ++i) {
    tuner.OnQuery(stream[static_cast<size_t>(i)]);
  }
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    ra_built_in_phase1 |= idx.table == photo && idx.columns[0] == ra;
  }
  EXPECT_TRUE(ra_built_in_phase1);

  for (int i = 120; i < 240; ++i) {
    tuner.OnQuery(stream[static_cast<size_t>(i)]);
  }
  // After the drift away from cone searches the ra index must be gone.
  bool ra_still_there = false;
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    ra_still_there |= idx.table == photo && idx.columns[0] == ra;
  }
  EXPECT_FALSE(ra_still_there);
  bool saw_drop = false;
  for (const ColtEvent& e : tuner.events()) {
    saw_drop |= e.type == ColtEvent::Type::kDrop;
  }
  EXPECT_TRUE(saw_drop);
}

TEST_F(ColtTest, SpaceBudgetLimitsConfiguration) {
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  double one_index_pages =
      EstimateIndexSize(IndexDef{photo, {1}, false},
                        db_->catalog().table(photo), db_->stats(photo))
          .total_pages();
  ColtOptions opts;
  opts.epoch_length = 10;
  opts.storage_budget_pages = one_index_pages * 1.5;  // room for ~1 index
  ColtTuner tuner(*db_, CostParams{}, opts);
  Rng rng(59);
  for (int i = 0; i < 80; ++i) {
    // Mix of templates wanting several different indexes.
    SdssTemplate t = (i % 2 == 0) ? SdssTemplate::kConeSearch
                                  : SdssTemplate::kRunFieldScan;
    BoundQuery q = GenerateSdssQuery(*db_, t, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  double pages = 0.0;
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    pages += EstimateIndexSize(idx, db_->catalog().table(idx.table),
                               db_->stats(idx.table))
                 .total_pages();
  }
  EXPECT_LE(pages, opts.storage_budget_pages + 1e-6);
}

TEST_F(ColtTest, RepeatedTemplateInstancesShareEpochStatistics) {
  // The tuner keys its bookkeeping by TemplateSignature: a stream of
  // one template (different constants every instance) collapses into a
  // single class, and INUM populations scale with templates — not with
  // the stream length.
  ColtOptions opts;
  opts.epoch_length = 25;
  ColtTuner tuner(*db_, CostParams{}, opts);
  Rng rng(67);
  for (int i = 0; i < 100; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng);
    q.id = i;
    tuner.OnQuery(q);
  }
  // Cone searches instantiate at most a couple of structural shapes.
  EXPECT_LE(tuner.num_template_classes(), 3u);
  size_t count = 0;
  for (const TemplateClass& cls : tuner.template_classes()) {
    count += cls.count;
  }
  EXPECT_EQ(count, 100u);
  ASSERT_EQ(tuner.epochs().size(), 4u);
  for (const ColtEpochReport& e : tuner.epochs()) {
    EXPECT_LE(e.epoch_templates,
              static_cast<int>(tuner.num_template_classes()));
    EXPECT_GE(e.epoch_templates, 1);
  }
  // Populations bounded by the per-template combo cap, far below one
  // per instance (the scaling claim of the compression layer).
  EXPECT_LE(tuner.inum_stats().populate_optimizations,
            128u * tuner.num_template_classes());
  EXPECT_LT(tuner.inum_stats().populate_optimizations, 100u);
}

TEST_F(ColtTest, BuildCostEstimatePositiveAndMonotone) {
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  TableId plate = db_->catalog().FindTable(kPlate);
  double big = EstimateIndexBuildCost(*db_, IndexDef{photo, {1}, false},
                                      CostParams{});
  double small = EstimateIndexBuildCost(*db_, IndexDef{plate, {1}, false},
                                        CostParams{});
  EXPECT_GT(big, 0.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small) << "bigger table => costlier build";
}

}  // namespace
}  // namespace dbdesign
