// Property-based tests on cost-model and selectivity invariants,
// parameterized over random seeds (TEST_P sweeps).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "catalog/stats.h"
#include "interaction/doi.h"
#include "interaction/schedule.h"
#include "optimizer/access_paths.h"
#include "optimizer/optimizer.h"
#include "inum/inum.h"
#include "optimizer/selectivity.h"
#include "sql/binder.h"
#include "util/rng.h"
#include "util/str.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

// ---------- Selectivity properties ----------

class SelectivityPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ColumnStats MakeStats(Rng& rng, int n, int64_t lo, int64_t hi) {
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      values.emplace_back(rng.UniformInt(lo, hi));
    }
    return BuildColumnStats(values);
  }
};

TEST_P(SelectivityPropertyTest, FractionBelowIsMonotoneAndBounded) {
  Rng rng(GetParam());
  ColumnStats stats = MakeStats(rng, 3000, 0, 10000);
  double prev = -1.0;
  for (int64_t v = -100; v <= 10100; v += 100) {
    double f = FractionBelow(stats, Value(v));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_GE(f, prev - 1e-12) << "non-monotone at " << v;
    prev = f;
  }
  EXPECT_DOUBLE_EQ(FractionBelow(stats, stats.min), 0.0);
  EXPECT_DOUBLE_EQ(FractionBelow(stats, Value(int64_t{20000})), 1.0);
}

TEST_P(SelectivityPropertyTest, ComparisonOperatorsPartitionUnity) {
  Rng rng(GetParam() ^ 0xabc);
  ColumnStats stats = MakeStats(rng, 3000, 0, 500);
  for (int trial = 0; trial < 20; ++trial) {
    Value v(rng.UniformInt(0, 500));
    BoundPredicate lt{BoundColumn{0, 0}, CompareOp::kLt, v, std::nullopt};
    BoundPredicate eq{BoundColumn{0, 0}, CompareOp::kEq, v, std::nullopt};
    BoundPredicate gt{BoundColumn{0, 0}, CompareOp::kGt, v, std::nullopt};
    double total = PredicateSelectivity(stats, lt) +
                   PredicateSelectivity(stats, eq) +
                   PredicateSelectivity(stats, gt);
    EXPECT_NEAR(total, 1.0, 0.05) << "value " << v.ToString();
  }
}

TEST_P(SelectivityPropertyTest, SelectivityTracksTruthOnRealData) {
  // Estimated selectivity must track the true fraction on the generated
  // column within a loose band (histogram resolution).
  Rng rng(GetParam() ^ 0xdef);
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) {
    values.emplace_back(rng.UniformInt(0, 2000));
  }
  ColumnStats stats = BuildColumnStats(values);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t lo = rng.UniformInt(0, 1500);
    int64_t hi = lo + rng.UniformInt(10, 500);
    BoundPredicate between{BoundColumn{0, 0}, CompareOp::kGe, Value(lo),
                           Value(hi)};
    double est = PredicateSelectivity(stats, between);
    double truth = 0.0;
    for (const Value& v : values) {
      if (v >= Value(lo) && v <= Value(hi)) truth += 1.0;
    }
    truth /= static_cast<double>(values.size());
    EXPECT_NEAR(est, truth, 0.05) << "[" << lo << "," << hi << "]";
  }
}

TEST_P(SelectivityPropertyTest, NeSelComplementariesEq) {
  Rng rng(GetParam() ^ 0x123);
  ColumnStats stats = MakeStats(rng, 2000, 0, 50);
  for (int trial = 0; trial < 10; ++trial) {
    Value v(rng.UniformInt(0, 50));
    BoundPredicate eq{BoundColumn{0, 0}, CompareOp::kEq, v, std::nullopt};
    BoundPredicate ne{BoundColumn{0, 0}, CompareOp::kNe, v, std::nullopt};
    EXPECT_NEAR(PredicateSelectivity(stats, eq) +
                    PredicateSelectivity(stats, ne),
                1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectivityPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------- Cost model properties ----------

TEST(CostModelPropertyTest, MackertLohmanBounds) {
  // Pages fetched is bounded by both the tuple count and the relation
  // size, and is monotone in tuples.
  double prev = 0.0;
  for (double tuples : {1.0, 10.0, 100.0, 1000.0, 10000.0, 1e6}) {
    double fetched = IndexPagesFetched(tuples, 500.0, 16384.0);
    EXPECT_LE(fetched, 500.0 + 1e-9);
    EXPECT_LE(fetched, tuples + 1.0);
    EXPECT_GE(fetched, prev - 1e-9);
    prev = fetched;
  }
  EXPECT_DOUBLE_EQ(IndexPagesFetched(0.0, 500.0, 16384.0), 0.0);
  // Cache-constrained branch (T > b): PostgreSQL counts refetches, so
  // the result may exceed the relation size but never the tuple count.
  double constrained = IndexPagesFetched(1e6, 5000.0, 100.0);
  EXPECT_GT(constrained, 5000.0) << "refetch regime must model misses";
  EXPECT_LE(constrained, 1e6 + 1.0);
  // And it must still be monotone in the cache size.
  EXPECT_LE(IndexPagesFetched(1e6, 5000.0, 4000.0), constrained);
}

TEST(CostModelPropertyTest, SortCostMonotoneInRowsAndWidth) {
  CostParams params;
  double prev = 0.0;
  for (double rows : {10.0, 100.0, 1000.0, 1e4, 1e5, 1e6}) {
    double c = SortCost(params, rows, 64.0).total;
    EXPECT_GT(c, prev);
    prev = c;
  }
  // Wider rows spill to disk earlier.
  EXPECT_GE(SortCost(params, 1e5, 512.0).total,
            SortCost(params, 1e5, 8.0).total);
}

TEST(CostModelPropertyTest, ExternalSortKicksIn) {
  CostParams params;
  params.work_mem_bytes = 1024;  // tiny
  double small = SortCost(params, 10.0, 16.0).total;
  double big = SortCost(params, 1e5, 16.0).total;
  CostParams roomy;
  roomy.work_mem_bytes = 1e12;
  double big_in_mem = SortCost(roomy, 1e5, 16.0).total;
  EXPECT_GT(big, big_in_mem) << "external sort must add IO";
  EXPECT_LT(small, big);
}

// ---------- Whole-optimizer properties over random workloads ----------

struct OptPropertyCase {
  uint64_t seed;
  int rows;
};

class OptimizerPropertyTest
    : public ::testing::TestWithParam<OptPropertyCase> {};

TEST_P(OptimizerPropertyTest, PathCostsScaleWithTableSize) {
  // The same query must cost strictly more on a table 8x the size
  // (seq scan regime).
  SdssConfig small_cfg;
  small_cfg.photoobj_rows = GetParam().rows;
  small_cfg.seed = GetParam().seed;
  SdssConfig big_cfg = small_cfg;
  big_cfg.photoobj_rows = GetParam().rows * 8;
  Database small = BuildSdssDatabase(small_cfg);
  Database big = BuildSdssDatabase(big_cfg);

  auto qs = ParseAndBind(small.catalog(),
                         "SELECT objid FROM photoobj WHERE ra > 180");
  auto qb = ParseAndBind(big.catalog(),
                         "SELECT objid FROM photoobj WHERE ra > 180");
  Optimizer opt_s(small.catalog(), small.all_stats());
  Optimizer opt_b(big.catalog(), big.all_stats());
  EXPECT_GT(opt_b.Optimize(qb.value(), PhysicalDesign{}).cost,
            opt_s.Optimize(qs.value(), PhysicalDesign{}).cost * 4.0);
}

TEST_P(OptimizerPropertyTest, TighterPredicatesNeverCostMoreWithIndex) {
  SdssConfig cfg;
  cfg.photoobj_rows = 4000;
  cfg.seed = GetParam().seed;
  Database db = BuildSdssDatabase(cfg);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  PhysicalDesign design;
  design.AddIndex(
      IndexDef{photo, {db.catalog().table(photo).FindColumn("ra")}, false});
  Optimizer opt(db.catalog(), db.all_stats());

  double prev = 0.0;
  for (double width : {64.0, 16.0, 4.0, 1.0, 0.25}) {
    auto q = ParseAndBind(
        db.catalog(),
        StrFormat("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND %.2f",
                  100.0 + width));
    double cost = opt.Optimize(q.value(), design).cost;
    if (prev > 0.0) {
      EXPECT_LE(cost, prev * 1.0001)
          << "narrower range got more expensive (width " << width << ")";
    }
    prev = cost;
  }
}

TEST_P(OptimizerPropertyTest, PlanCostIsPositiveAndFinite) {
  SdssConfig cfg;
  cfg.photoobj_rows = 2000;
  cfg.seed = GetParam().seed;
  Database db = BuildSdssDatabase(cfg);
  Workload w = GenerateWorkload(db, TemplateMix::Uniform(), 25,
                                GetParam().seed * 3 + 1);
  Optimizer opt(db.catalog(), db.all_stats());
  Rng rng(GetParam().seed);
  for (const BoundQuery& q : w.queries) {
    PhysicalDesign design;
    for (int s = 0; s < q.num_slots(); ++s) {
      for (ColumnId c : q.PredicateColumns(s)) {
        if (rng.Bernoulli(0.4)) {
          design.AddIndex(IndexDef{q.tables[s], {c}, false});
        }
      }
    }
    PlanResult r = opt.Optimize(q, design);
    ASSERT_NE(r.root, nullptr);
    EXPECT_TRUE(std::isfinite(r.cost));
    EXPECT_GT(r.cost, 0.0);
    EXPECT_TRUE(std::isfinite(r.root->rows));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerPropertyTest,
                         ::testing::Values(OptPropertyCase{11, 1000},
                                           OptPropertyCase{22, 1500},
                                           OptPropertyCase{33, 2000}));

// ---------- INUM invariants under partitioned designs ----------

class InumPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InumPropertyTest, ReuseNeverBeatsExactOnPartitionedDesigns) {
  SdssConfig cfg;
  cfg.photoobj_rows = 3000;
  cfg.seed = GetParam();
  Database db = BuildSdssDatabase(cfg);
  Workload w =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 8, GetParam());
  InumCostModel inum(db);
  WhatIfOptimizer exact(db);
  Rng rng(GetParam() ^ 0x5555);

  TableId photo = db.catalog().FindTable(kPhotoObj);
  const TableDef& def = db.catalog().table(photo);
  for (int trial = 0; trial < 4; ++trial) {
    PhysicalDesign design;
    // Random split of photoobj into two fragments.
    VerticalFragment a;
    VerticalFragment b;
    for (ColumnId c = 0; c < def.num_columns(); ++c) {
      (rng.Bernoulli(0.5) ? a : b).columns.push_back(c);
    }
    if (!a.columns.empty() && !b.columns.empty()) {
      VerticalPartitioning vp;
      vp.table = photo;
      vp.fragments = {a, b};
      design.SetVerticalPartitioning(vp);
    }
    if (rng.Bernoulli(0.5)) {
      design.AddIndex(IndexDef{photo, {def.FindColumn("ra")}, false});
    }
    for (const BoundQuery& q : w.queries) {
      double fast = inum.Cost(q, design);
      double full = exact.CostUnder(q, design);
      EXPECT_GE(fast, full * 0.98) << q.ToSql(db.catalog());
      EXPECT_LE(fast, full * 1.25) << q.ToSql(db.catalog());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InumPropertyTest,
                         ::testing::Values(71u, 72u, 73u));

// ---------- Interaction & deployment-schedule invariants ----------

class InteractionPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    SdssConfig cfg;
    cfg.photoobj_rows = 3000;
    cfg.seed = GetParam();
    db_ = std::make_unique<Database>(BuildSdssDatabase(cfg));
    inum_ = std::make_unique<InumCostModel>(*db_);
    workload_ =
        GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, GetParam());
    TableId photo = db_->catalog().FindTable(kPhotoObj);
    TableId spec = db_->catalog().FindTable(kSpecObj);
    const TableDef& pdef = db_->catalog().table(photo);
    const TableDef& sdef = db_->catalog().table(spec);
    indexes_ = {
        IndexDef{photo, {pdef.FindColumn("ra")}, false},
        IndexDef{photo, {pdef.FindColumn("ra"), pdef.FindColumn("dec")},
                 false},
        IndexDef{photo, {pdef.FindColumn("type")}, false},
        IndexDef{spec, {sdef.FindColumn("z")}, false},
    };
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<InumCostModel> inum_;
  Workload workload_;
  std::vector<IndexDef> indexes_;
};

TEST_P(InteractionPropertyTest, DoiIsExactlySymmetric) {
  // Not just mathematically symmetric: PairDoi canonicalizes the pair
  // before any sampling or arithmetic, so the equality is bit-for-bit.
  InteractionAnalyzer analyzer(*inum_);
  int n = static_cast<int>(indexes_.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      EXPECT_EQ(analyzer.PairDoi(workload_, indexes_, a, b),
                analyzer.PairDoi(workload_, indexes_, b, a))
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST_P(InteractionPropertyTest, SelfInteractionIsZero) {
  InteractionAnalyzer analyzer(*inum_);
  for (int a = 0; a < static_cast<int>(indexes_.size()); ++a) {
    EXPECT_EQ(analyzer.PairDoi(workload_, indexes_, a, a), 0.0);
  }
}

TEST_P(InteractionPropertyTest, MatrixAgreesWithPairDoi) {
  InteractionAnalyzer analyzer(*inum_);
  DoiMatrix m = analyzer.AnalyzeMatrix(workload_, indexes_);
  int n = static_cast<int>(indexes_.size());
  for (int a = 0; a < n; ++a) {
    EXPECT_EQ(m.Doi(a, a), 0.0);
    for (int b = a + 1; b < n; ++b) {
      EXPECT_EQ(m.Doi(a, b), m.Doi(b, a));
      EXPECT_NEAR(m.Doi(a, b), analyzer.PairDoi(workload_, indexes_, a, b),
                  1e-9);
    }
  }
}

TEST_P(InteractionPropertyTest, EveryPermutationReachesTheSameFinalCost) {
  // The build order changes the path, never the destination: all 4! = 24
  // permutations end at the same final workload cost, and every
  // schedule's per-step cost is monotone non-increasing (an index can
  // only add plan options).
  MaterializationScheduler scheduler(*inum_);
  std::vector<int> order(indexes_.size());
  std::iota(order.begin(), order.end(), 0);
  double final_cost = -1.0;
  do {
    MaterializationSchedule s =
        scheduler.FixedOrder(workload_, indexes_, order);
    ASSERT_EQ(s.steps.size(), indexes_.size());
    if (final_cost < 0) {
      final_cost = s.final_cost;
    } else {
      EXPECT_NEAR(s.final_cost, final_cost, 1e-9 * std::abs(final_cost));
    }
    double prev = s.base_cost;
    for (const ScheduleStep& step : s.steps) {
      EXPECT_LE(step.cost_after, prev + 1e-6);
      prev = step.cost_after;
    }
    EXPECT_DOUBLE_EQ(s.steps.back().cost_after, s.final_cost)
        << "incremental bookkeeping drifted from the full design";
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST_P(InteractionPropertyTest, GreedyCostCurveIsMonotone) {
  MaterializationScheduler scheduler(*inum_);
  MaterializationSchedule greedy = scheduler.Greedy(workload_, indexes_);
  ASSERT_EQ(greedy.steps.size(), indexes_.size());
  double prev = greedy.base_cost;
  double pages = 0.0;
  for (const ScheduleStep& step : greedy.steps) {
    EXPECT_LE(step.cost_after, prev + 1e-6)
        << "greedy per-step workload cost must be non-increasing";
    prev = step.cost_after;
    pages += step.build_pages;
    EXPECT_DOUBLE_EQ(step.cumulative_pages, pages);
  }
  EXPECT_DOUBLE_EQ(greedy.total_pages, pages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InteractionPropertyTest,
                         ::testing::Values(91u, 92u, 93u));

}  // namespace
}  // namespace dbdesign
