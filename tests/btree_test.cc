// B+-tree tests: bulk load, inserts, range/prefix scans vs brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/btree.h"
#include "util/rng.h"

namespace dbdesign {
namespace {

IndexKey K1(int64_t a) { return IndexKey{Value(a)}; }
IndexKey K2(int64_t a, int64_t b) { return IndexKey{Value(a), Value(b)}; }

TEST(KeyCompareTest, PrefixSemantics) {
  EXPECT_EQ(CompareKeyPrefix(K1(5), K2(5, 9)), 0);  // prefix-equal
  EXPECT_LT(CompareKeyPrefix(K1(4), K2(5, 0)), 0);
  EXPECT_GT(CompareKeyPrefix(K2(5, 1), K2(5, 0)), 0);
  EXPECT_TRUE(KeyLess(K1(5), K2(5, 9)));  // shorter ties first
  EXPECT_FALSE(KeyLess(K2(5, 9), K1(5)));
}

TEST(BTreeTest, EmptyTree) {
  BTreeIndex t;
  EXPECT_EQ(t.NumEntries(), 0u);
  EXPECT_TRUE(t.FullScan().empty());
  EXPECT_TRUE(t.Lookup(K1(1)).empty());
}

TEST(BTreeTest, BulkLoadFullScanIsSorted) {
  Rng rng(1);
  std::vector<std::pair<IndexKey, RowId>> entries;
  std::vector<int64_t> keys;
  for (RowId i = 0; i < 5000; ++i) {
    int64_t k = rng.UniformInt(0, 100000);
    keys.push_back(k);
    entries.emplace_back(K1(k), i);
  }
  BTreeIndex t;
  t.BulkLoad(entries);
  EXPECT_EQ(t.NumEntries(), 5000u);
  EXPECT_GE(t.Height(), 2);

  std::vector<RowId> scan = t.FullScan();
  ASSERT_EQ(scan.size(), 5000u);
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_LE(keys[scan[i - 1]], keys[scan[i]]);
  }
}

TEST(BTreeTest, PointLookupWithDuplicates) {
  std::vector<std::pair<IndexKey, RowId>> entries;
  for (RowId i = 0; i < 1000; ++i) entries.emplace_back(K1(i % 10), i);
  BTreeIndex t;
  t.BulkLoad(entries);
  std::vector<RowId> hits = t.Lookup(K1(3));
  EXPECT_EQ(hits.size(), 100u);
  for (RowId r : hits) EXPECT_EQ(r % 10, 3u);
  EXPECT_TRUE(t.Lookup(K1(42)).empty());
}

struct RangeScanCase {
  int num_rows;
  int key_space;
  uint64_t seed;
};

class BTreeRangeScanTest : public ::testing::TestWithParam<RangeScanCase> {};

TEST_P(BTreeRangeScanTest, MatchesBruteForce) {
  const RangeScanCase& param = GetParam();
  Rng rng(param.seed);
  std::vector<std::pair<IndexKey, RowId>> entries;
  std::vector<int64_t> keys;
  for (RowId i = 0; i < static_cast<RowId>(param.num_rows); ++i) {
    int64_t k = rng.UniformInt(0, param.key_space);
    keys.push_back(k);
    entries.emplace_back(K1(k), i);
  }
  BTreeIndex t;
  t.BulkLoad(entries);

  for (int trial = 0; trial < 30; ++trial) {
    int64_t lo = rng.UniformInt(0, param.key_space);
    int64_t hi = rng.UniformInt(lo, param.key_space);
    bool lo_inc = rng.Bernoulli(0.5);
    bool hi_inc = rng.Bernoulli(0.5);
    std::vector<RowId> got = t.RangeScan(K1(lo), lo_inc, K1(hi), hi_inc);
    std::vector<RowId> want;
    for (RowId i = 0; i < keys.size(); ++i) {
      int64_t k = keys[i];
      bool in = (lo_inc ? k >= lo : k > lo) && (hi_inc ? k <= hi : k < hi);
      if (in) want.push_back(i);
    }
    // Both in key order; sort row ids within equal keys for comparison.
    auto by_key = [&](RowId a, RowId b) {
      return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    };
    std::sort(got.begin(), got.end(), by_key);
    std::sort(want.begin(), want.end(), by_key);
    ASSERT_EQ(got, want) << "trial " << trial << " lo=" << lo << " hi=" << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeRangeScanTest,
    ::testing::Values(RangeScanCase{100, 50, 3},
                      RangeScanCase{1000, 100000, 4},
                      RangeScanCase{5000, 200, 5},
                      RangeScanCase{20000, 1000000, 6}));

TEST(BTreeTest, UnboundedScans) {
  std::vector<std::pair<IndexKey, RowId>> entries;
  for (RowId i = 0; i < 500; ++i) entries.emplace_back(K1(i), i);
  BTreeIndex t;
  t.BulkLoad(entries);
  EXPECT_EQ(t.RangeScan({}, true, K1(99), true).size(), 100u);
  EXPECT_EQ(t.RangeScan(K1(400), true, {}, true).size(), 100u);
  EXPECT_EQ(t.RangeScan({}, true, {}, true).size(), 500u);
}

TEST(BTreeTest, CompositeKeyPrefixScan) {
  std::vector<std::pair<IndexKey, RowId>> entries;
  RowId id = 0;
  for (int64_t a = 0; a < 50; ++a) {
    for (int64_t b = 0; b < 20; ++b) entries.emplace_back(K2(a, b), id++);
  }
  BTreeIndex t;
  t.BulkLoad(entries);
  // Prefix lookup on first column only.
  std::vector<RowId> hits = t.Lookup(K1(7));
  EXPECT_EQ(hits.size(), 20u);
  // Full composite range.
  std::vector<RowId> range = t.RangeScan(K2(7, 5), true, K2(7, 9), true);
  EXPECT_EQ(range.size(), 5u);
  // Prefix range across first column.
  std::vector<RowId> wide = t.RangeScan(K1(7), true, K1(9), true);
  EXPECT_EQ(wide.size(), 60u);
}

TEST(BTreeTest, InsertMatchesBulkLoad) {
  Rng rng(9);
  std::vector<std::pair<IndexKey, RowId>> entries;
  BTreeIndex inserted;
  for (RowId i = 0; i < 3000; ++i) {
    int64_t k = rng.UniformInt(0, 500);
    entries.emplace_back(K1(k), i);
    inserted.Insert(K1(k), i);
  }
  BTreeIndex bulk;
  bulk.BulkLoad(entries);
  EXPECT_EQ(inserted.NumEntries(), bulk.NumEntries());

  for (int64_t k = 0; k <= 500; k += 25) {
    std::vector<RowId> a = inserted.Lookup(K1(k));
    std::vector<RowId> b = bulk.Lookup(K1(k));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "key " << k;
  }
}

TEST(BTreeTest, InsertIntoBulkLoadedTree) {
  std::vector<std::pair<IndexKey, RowId>> entries;
  for (RowId i = 0; i < 1000; ++i) entries.emplace_back(K1(i * 2), i);
  BTreeIndex t;
  t.BulkLoad(entries);
  for (RowId i = 0; i < 500; ++i) t.Insert(K1(i * 2 + 1), 1000 + i);
  EXPECT_EQ(t.NumEntries(), 1500u);
  std::vector<RowId> all = t.FullScan();
  EXPECT_EQ(all.size(), 1500u);
  EXPECT_EQ(t.Lookup(K1(1)).size(), 1u);
  EXPECT_EQ(t.Lookup(K1(1))[0], 1000u);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  std::vector<std::pair<IndexKey, RowId>> small;
  for (RowId i = 0; i < 64; ++i) small.emplace_back(K1(i), i);
  BTreeIndex t_small;
  t_small.BulkLoad(small);
  EXPECT_EQ(t_small.Height(), 1);

  std::vector<std::pair<IndexKey, RowId>> big;
  for (RowId i = 0; i < 60000; ++i) big.emplace_back(K1(i), i);
  BTreeIndex t_big;
  t_big.BulkLoad(big);
  EXPECT_LE(t_big.Height(), 4);
  EXPECT_GE(t_big.Height(), 3);
}

}  // namespace
}  // namespace dbdesign
