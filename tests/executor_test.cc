// Executor correctness: every plan the optimizer emits — under any
// physical design and knob setting — must produce the same result as the
// naive reference evaluator.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 3000;
    cfg.seed = 11;
    db_ = new Database(BuildSdssDatabase(cfg));
    // Materialize a set of indexes so index plans are executable.
    TableId photo = db_->catalog().FindTable(kPhotoObj);
    TableId spec = db_->catalog().FindTable(kSpecObj);
    const TableDef& pdef = db_->catalog().table(photo);
    const TableDef& sdef = db_->catalog().table(spec);
    indexes_ = new std::vector<IndexDef>{
        {photo, {pdef.FindColumn("ra"), pdef.FindColumn("dec")}, false},
        {photo, {pdef.FindColumn("objid")}, false},
        {photo,
         {pdef.FindColumn("run"), pdef.FindColumn("camcol"),
          pdef.FindColumn("field")},
         false},
        {photo, {pdef.FindColumn("mjd")}, false},
        {spec, {sdef.FindColumn("bestobjid")}, false},
        {spec, {sdef.FindColumn("z")}, false},
    };
    for (const IndexDef& idx : *indexes_) {
      ASSERT_TRUE(db_->CreateIndex(idx).ok());
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    delete indexes_;
    db_ = nullptr;
    indexes_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    return q.value();
  }

  /// Optimizes under `design` and checks plan output == naive output.
  static void CheckQuery(const BoundQuery& q, const PhysicalDesign& design,
                         PlannerKnobs knobs = {}) {
    Optimizer opt(db_->catalog(), db_->all_stats(), CostParams{}, knobs);
    PlanResult r = opt.Optimize(q, design);
    ASSERT_NE(r.root, nullptr);
    Executor exec(*db_);
    auto rows = exec.Execute(q, *r.root);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString() << "\n"
                           << r.root->ToString(db_->catalog(), q);
    std::vector<Row> naive = exec.ExecuteNaive(q);
    if (q.limit >= 0) {
      // LIMIT without full ORDER BY is nondeterministic: check count only.
      EXPECT_EQ(rows.value().size(), naive.size());
      return;
    }
    EXPECT_EQ(CanonicalizeResult(rows.value()), CanonicalizeResult(naive))
        << q.ToSql(db_->catalog()) << "\n"
        << r.root->ToString(db_->catalog(), q);
  }

  static Database* db_;
  static std::vector<IndexDef>* indexes_;
};

Database* ExecutorTest::db_ = nullptr;
std::vector<IndexDef>* ExecutorTest::indexes_ = nullptr;

TEST_F(ExecutorTest, SeqScanFilter) {
  CheckQuery(Q("SELECT objid, ra FROM photoobj WHERE ra BETWEEN 50 AND 60"),
             PhysicalDesign{});
}

TEST_F(ExecutorTest, IndexScanEqualsSeqScan) {
  BoundQuery q = Q("SELECT objid, ra FROM photoobj WHERE ra BETWEEN 50 AND 52");
  CheckQuery(q, PhysicalDesign{});
  CheckQuery(q, db_->CurrentDesign());
}

TEST_F(ExecutorTest, MultiColumnIndexConditions) {
  CheckQuery(Q("SELECT objid, field FROM photoobj WHERE run = 94 "
               "AND camcol = 2 AND field BETWEEN 11 AND 20"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, OpenEndedRanges) {
  CheckQuery(Q("SELECT objid FROM photoobj WHERE ra > 355"),
             db_->CurrentDesign());
  CheckQuery(Q("SELECT objid FROM photoobj WHERE ra < 2"),
             db_->CurrentDesign());
  CheckQuery(Q("SELECT objid FROM photoobj WHERE mjd >= 51100 AND mjd <= 51150"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, PointLookup) {
  CheckQuery(Q("SELECT objid, ra, dec FROM photoobj WHERE objid = 1601"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, NotEqualFilter) {
  CheckQuery(Q("SELECT objid FROM photoobj WHERE type <> 3 AND ra < 30"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, TwoWayJoin) {
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z BETWEEN 0.1 AND 0.4");
  CheckQuery(q, PhysicalDesign{});
  CheckQuery(q, db_->CurrentDesign());
}

TEST_F(ExecutorTest, JoinMethodsAgree) {
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.05 AND p.type = 3");
  PlannerKnobs hash_only;
  hash_only.enable_mergejoin = false;
  hash_only.enable_nestloop = false;
  hash_only.enable_indexnestloop = false;
  CheckQuery(q, db_->CurrentDesign(), hash_only);

  PlannerKnobs merge_only;
  merge_only.enable_hashjoin = false;
  merge_only.enable_nestloop = false;
  merge_only.enable_indexnestloop = false;
  CheckQuery(q, db_->CurrentDesign(), merge_only);

  PlannerKnobs nl_only;
  nl_only.enable_hashjoin = false;
  nl_only.enable_mergejoin = false;
  nl_only.enable_indexnestloop = false;
  CheckQuery(q, db_->CurrentDesign(), nl_only);

  PlannerKnobs inl_only;
  inl_only.enable_hashjoin = false;
  inl_only.enable_mergejoin = false;
  inl_only.enable_nestloop = false;
  CheckQuery(q, db_->CurrentDesign(), inl_only);
}

TEST_F(ExecutorTest, HashJoinOutputOrderMatchesNestedLoopExactly) {
  // Regression for a determinism-lint finding: hash-join matches for a
  // duplicate join key used to stream out in unordered_multimap::
  // equal_range order, which is implementation-defined — so a query
  // without ORDER BY could return rows in a different order on a
  // different standard library. The fix sorts each probe's match set
  // into inner-row order, which is exactly the order a nested-loop join
  // produces; the two plans must now agree row-for-row, not just as
  // multisets.
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.05");
  PlannerKnobs hash_only;
  hash_only.enable_mergejoin = false;
  hash_only.enable_nestloop = false;
  hash_only.enable_indexnestloop = false;
  PlannerKnobs nl_only;
  nl_only.enable_hashjoin = false;
  nl_only.enable_mergejoin = false;
  nl_only.enable_indexnestloop = false;

  Executor exec(*db_);
  Optimizer hash_opt(db_->catalog(), db_->all_stats(), CostParams{},
                     hash_only);
  PlanResult hash_plan = hash_opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(hash_plan.root, nullptr);
  auto hash_rows = exec.Execute(q, *hash_plan.root);
  ASSERT_TRUE(hash_rows.ok()) << hash_rows.status().ToString();

  Optimizer nl_opt(db_->catalog(), db_->all_stats(), CostParams{}, nl_only);
  PlanResult nl_plan = nl_opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(nl_plan.root, nullptr);
  auto nl_rows = exec.Execute(q, *nl_plan.root);
  ASSERT_TRUE(nl_rows.ok()) << nl_rows.status().ToString();

  ASSERT_EQ(hash_rows.value().size(), nl_rows.value().size());
  EXPECT_TRUE(hash_rows.value() == nl_rows.value())
      << "hash join emitted the same rows in a different order";
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  BoundQuery q = Q(
      "SELECT p.objid, s.z, pl.mjd FROM photoobj p "
      "JOIN specobj s ON p.objid = s.bestobjid "
      "JOIN plate pl ON s.plate = pl.plate "
      "WHERE s.z > 0.3 AND pl.quality >= 2");
  CheckQuery(q, PhysicalDesign{});
  CheckQuery(q, db_->CurrentDesign());
}

TEST_F(ExecutorTest, GroupByAggregates) {
  CheckQuery(Q("SELECT run, COUNT(*) FROM photoobj "
               "WHERE dec BETWEEN 0 AND 10 GROUP BY run ORDER BY run"),
             db_->CurrentDesign());
  CheckQuery(Q("SELECT class, COUNT(*), AVG(z) FROM specobj "
               "WHERE sn_median > 5 GROUP BY class"),
             db_->CurrentDesign());
  CheckQuery(Q("SELECT type, MIN(psfmag_r), MAX(psfmag_r) FROM photoobj "
               "GROUP BY type"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, PlainAggregates) {
  CheckQuery(Q("SELECT COUNT(*) FROM photoobj WHERE ra < 100"),
             db_->CurrentDesign());
  CheckQuery(Q("SELECT SUM(z), AVG(sn_median) FROM specobj WHERE class = 0"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, OrderByAscDesc) {
  CheckQuery(Q("SELECT objid, mjd FROM photoobj WHERE ra < 5 ORDER BY mjd"),
             db_->CurrentDesign());
  CheckQuery(
      Q("SELECT objid, mjd FROM photoobj WHERE ra < 5 ORDER BY mjd DESC"),
      db_->CurrentDesign());
}

TEST_F(ExecutorTest, LimitCount) {
  CheckQuery(Q("SELECT objid FROM photoobj WHERE type = 3 LIMIT 17"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, JoinWithAggregation) {
  CheckQuery(Q("SELECT s.class, COUNT(*) FROM photoobj p "
               "JOIN specobj s ON p.objid = s.bestobjid "
               "WHERE p.type = 3 GROUP BY s.class"),
             db_->CurrentDesign());
}

TEST_F(ExecutorTest, HypotheticalIndexPlanIsNotExecutable) {
  PhysicalDesign design = db_->CurrentDesign();
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId score =
      db_->catalog().table(photo).FindColumn("score");
  design.AddIndex(IndexDef{photo, {score}, false});
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE score < 0.001");
  Optimizer opt(db_->catalog(), db_->all_stats());
  PlanResult r = opt.Optimize(q, design);
  ASSERT_NE(r.root, nullptr);
  Executor exec(*db_);
  if (r.root->index.has_value() &&
      r.root->index->columns == std::vector<ColumnId>{score}) {
    auto rows = exec.Execute(q, *r.root);
    EXPECT_FALSE(rows.ok());
    EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
  }
}

// Property sweep: random workload queries, three designs, all must agree
// with the naive evaluator.
struct ExecSweepCase {
  uint64_t seed;
  int queries;
};

class ExecutorSweepTest : public ::testing::TestWithParam<ExecSweepCase> {};

TEST_P(ExecutorSweepTest, RandomTemplatesAllDesigns) {
  SdssConfig cfg;
  cfg.photoobj_rows = 1500;
  cfg.seed = GetParam().seed;
  Database db = BuildSdssDatabase(cfg);

  TableId photo = db.catalog().FindTable(kPhotoObj);
  TableId spec = db.catalog().FindTable(kSpecObj);
  TableId neigh = db.catalog().FindTable(kNeighbors);
  const TableDef& pdef = db.catalog().table(photo);
  const TableDef& sdef = db.catalog().table(spec);
  const TableDef& ndef = db.catalog().table(neigh);
  ASSERT_TRUE(db.CreateIndex(
      IndexDef{photo, {pdef.FindColumn("objid")}, false}).ok());
  ASSERT_TRUE(db.CreateIndex(
      IndexDef{photo, {pdef.FindColumn("ra")}, false}).ok());
  ASSERT_TRUE(db.CreateIndex(
      IndexDef{spec, {sdef.FindColumn("bestobjid")}, false}).ok());
  ASSERT_TRUE(db.CreateIndex(
      IndexDef{neigh, {ndef.FindColumn("objid")}, false}).ok());

  Workload w = GenerateWorkload(db, TemplateMix::Uniform(),
                                GetParam().queries, GetParam().seed * 13 + 1);
  Optimizer opt(db.catalog(), db.all_stats());
  Executor exec(db);
  for (const BoundQuery& q : w.queries) {
    for (const PhysicalDesign& design :
         {PhysicalDesign{}, db.CurrentDesign()}) {
      PlanResult r = opt.Optimize(q, design);
      ASSERT_NE(r.root, nullptr) << q.ToSql(db.catalog());
      auto rows = exec.Execute(q, *r.root);
      ASSERT_TRUE(rows.ok())
          << rows.status().ToString() << "\n"
          << q.ToSql(db.catalog());
      std::vector<Row> naive = exec.ExecuteNaive(q);
      if (q.limit >= 0) {
        EXPECT_EQ(rows.value().size(), naive.size());
      } else {
        EXPECT_EQ(CanonicalizeResult(rows.value()), CanonicalizeResult(naive))
            << q.ToSql(db.catalog()) << "\n"
            << r.root->ToString(db.catalog(), q);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorSweepTest,
                         ::testing::Values(ExecSweepCase{101, 15},
                                           ExecSweepCase{202, 15},
                                           ExecSweepCase{303, 15}));


TEST_F(ExecutorTest, ProfileReportsActualRowsPerOperator) {
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z BETWEEN 0.1 AND 0.4");
  Optimizer opt(db_->catalog(), db_->all_stats());
  PlanResult r = opt.Optimize(q, db_->CurrentDesign());
  ASSERT_NE(r.root, nullptr);
  Executor exec(*db_);
  ExecutionProfile profile;
  auto rows = exec.Execute(q, *r.root, &profile);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(profile.empty());
  // The root tuple operator's actual output must equal the result size.
  EXPECT_EQ(profile.back().actual_rows, rows.value().size());
  for (const OperatorProfile& op : profile) {
    EXPECT_GE(op.QError(), 1.0);
    EXPECT_NE(op.node, nullptr);
  }
}

TEST_F(ExecutorTest, CardinalityEstimatesTrackReality) {
  // The q-error of scan-level estimates on the generated data should be
  // modest — this is the check that the statistics + selectivity stack
  // actually models the data the generator produces.
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 20, 123);
  Optimizer opt(db_->catalog(), db_->all_stats());
  Executor exec(*db_);
  std::vector<double> qerrors;
  for (const BoundQuery& q : w.queries) {
    if (q.limit >= 0) continue;
    PlanResult r = opt.Optimize(q, PhysicalDesign{});
    ASSERT_NE(r.root, nullptr);
    ExecutionProfile profile;
    auto rows = exec.Execute(q, *r.root, &profile);
    ASSERT_TRUE(rows.ok());
    for (const OperatorProfile& op : profile) {
      if (op.node->children.empty()) qerrors.push_back(op.QError());
    }
  }
  ASSERT_FALSE(qerrors.empty());
  std::sort(qerrors.begin(), qerrors.end());
  double median = qerrors[qerrors.size() / 2];
  EXPECT_LT(median, 3.0) << "median scan q-error too high";
  // 90th percentile within a factor 20 (independence assumptions bite
  // on correlated magnitude predicates, as in real systems).
  EXPECT_LT(qerrors[qerrors.size() * 9 / 10], 20.0);
}

}  // namespace
}  // namespace dbdesign
