// INUM tests: the cached cost model must closely track the full
// optimizer across random index/partition configurations, while issuing
// far fewer full optimizations.

#include <gtest/gtest.h>

#include <cmath>

#include "inum/inum.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class InumTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 17;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  /// Candidate indexes drawn from a query's predicate columns.
  static std::vector<IndexDef> Candidates(const BoundQuery& q) {
    std::vector<IndexDef> out;
    for (int s = 0; s < q.num_slots(); ++s) {
      for (ColumnId c : q.PredicateColumns(s)) {
        IndexDef idx;
        idx.table = q.tables[s];
        idx.columns = {c};
        bool dup = false;
        for (const IndexDef& e : out) dup |= e == idx;
        if (!dup) out.push_back(idx);
      }
      std::vector<ColumnId> preds = q.PredicateColumns(s);
      if (preds.size() >= 2) {
        IndexDef multi;
        multi.table = q.tables[s];
        multi.columns = {preds[0], preds[1]};
        out.push_back(multi);
      }
    }
    return out;
  }

  static Database* db_;
};

Database* InumTest::db_ = nullptr;

TEST_F(InumTest, MatchesExactOnEmptyDesign) {
  InumCostModel inum(*db_);
  WhatIfOptimizer exact(*db_);
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 15, 23);
  for (const BoundQuery& q : w.queries) {
    double fast = inum.Cost(q, PhysicalDesign{});
    double full = exact.CostUnder(q, PhysicalDesign{});
    EXPECT_NEAR(fast / full, 1.0, 0.02) << q.ToSql(db_->catalog());
  }
}

TEST_F(InumTest, TracksExactAcrossRandomDesigns) {
  InumCostModel inum(*db_);
  WhatIfOptimizer exact(*db_);
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 12, 29);
  Rng rng(31);

  int checked = 0;
  int close = 0;
  for (const BoundQuery& q : w.queries) {
    std::vector<IndexDef> cands = Candidates(q);
    for (int trial = 0; trial < 6; ++trial) {
      PhysicalDesign design;
      for (const IndexDef& idx : cands) {
        if (rng.Bernoulli(0.5)) design.AddIndex(idx);
      }
      double fast = inum.Cost(q, design);
      double full = exact.CostUnder(q, design);
      ++checked;
      double rel = std::abs(fast - full) / std::max(1.0, full);
      if (rel < 0.05) ++close;
      // INUM evaluates real plans priced with the same formulas, so its
      // estimate must never beat the true optimum materially.
      EXPECT_GE(fast, full * 0.98)
          << q.ToSql(db_->catalog()) << " design=" << design.Fingerprint();
    }
  }
  // The published INUM reports near-exact reuse; require >= 90% here.
  EXPECT_GE(static_cast<double>(close) / checked, 0.9)
      << close << "/" << checked << " within 5%";
}

TEST_F(InumTest, PartitionAwareReuse) {
  // The paper's extension: INUM reuse must stay accurate when the design
  // includes vertical partitions, without repopulating.
  InumCostModel inum(*db_);
  WhatIfOptimizer exact(*db_);
  auto q = ParseAndBind(db_->catalog(),
                        "SELECT objid, ra FROM photoobj WHERE ra > 350");
  ASSERT_TRUE(q.ok());

  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);
  VerticalFragment narrow;
  narrow.columns = {def.FindColumn("objid"), def.FindColumn("ra")};
  std::sort(narrow.columns.begin(), narrow.columns.end());
  VerticalFragment rest;
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    if (!narrow.Covers(c)) rest.columns.push_back(c);
  }
  VerticalPartitioning vp;
  vp.table = photo;
  vp.fragments = {narrow, rest};
  PhysicalDesign design;
  design.SetVerticalPartitioning(vp);

  double fast = inum.Cost(q.value(), design);
  double full = exact.CostUnder(q.value(), design);
  EXPECT_NEAR(fast / full, 1.0, 0.05);

  // And the partitioned cost must be far below the unpartitioned one.
  EXPECT_LT(fast, inum.Cost(q.value(), PhysicalDesign{}) * 0.5);
}

TEST_F(InumTest, ReuseAvoidsFullOptimizations) {
  InumCostModel inum(*db_);
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 41);
  // Warm the cache.
  for (const BoundQuery& q : w.queries) inum.Prepare(q);
  uint64_t populate = inum.stats().populate_optimizations;
  EXPECT_GT(populate, 0u);

  // 100 design evaluations must not trigger any further populate work.
  Rng rng(43);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);
  for (int trial = 0; trial < 10; ++trial) {
    PhysicalDesign design;
    for (ColumnId c = 0; c < def.num_columns(); ++c) {
      if (rng.Bernoulli(0.2)) design.AddIndex(IndexDef{photo, {c}, false});
    }
    for (const BoundQuery& q : w.queries) inum.Cost(q, design);
  }
  EXPECT_EQ(inum.stats().populate_optimizations, populate);
  EXPECT_EQ(inum.stats().reuse_calls, 100u);
  EXPECT_EQ(inum.stats().queries_cached, w.size());
}

TEST_F(InumTest, CachedPlansExposeSignatures) {
  InumCostModel inum(*db_);
  auto q = ParseAndBind(
      db_->catalog(),
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.4");
  ASSERT_TRUE(q.ok());
  inum.Prepare(q.value());
  const auto* plans = inum.CachedPlansFor(q.value());
  ASSERT_NE(plans, nullptr);
  EXPECT_GT(plans->size(), 1u);
  bool has_param = false;
  bool has_ordered = false;
  for (const auto& plan : *plans) {
    EXPECT_EQ(plan.slots.size(), 2u);
    for (const auto& sig : plan.slots) {
      using Kind = InumCostModel::SlotSignature::Kind;
      has_param |= sig.kind == Kind::kParamLookup;
      has_ordered |= sig.kind == Kind::kOrdered;
    }
  }
  EXPECT_TRUE(has_param);
  EXPECT_TRUE(has_ordered);
}

TEST_F(InumTest, BenefitOrderingAgreesWithExact) {
  // The advisor only needs *relative* costs to rank candidates; check
  // that INUM orders single-index designs the same way the optimizer
  // does for a selective query.
  InumCostModel inum(*db_);
  WhatIfOptimizer exact(*db_);
  auto q = ParseAndBind(db_->catalog(),
                        "SELECT objid FROM photoobj "
                        "WHERE ra BETWEEN 30 AND 31 AND type = 3");
  ASSERT_TRUE(q.ok());
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);

  std::vector<PhysicalDesign> designs(3);
  designs[1].AddIndex(IndexDef{photo, {def.FindColumn("ra")}, false});
  designs[2].AddIndex(IndexDef{photo, {def.FindColumn("type")}, false});

  std::vector<double> fast;
  std::vector<double> full;
  for (const PhysicalDesign& d : designs) {
    fast.push_back(inum.Cost(q.value(), d));
    full.push_back(exact.CostUnder(q.value(), d));
  }
  // Both must agree the ra-index is best and empty is worst.
  EXPECT_LT(fast[1], fast[0]);
  EXPECT_LT(full[1], full[0]);
  EXPECT_LT(fast[1], fast[2]);
  EXPECT_LT(full[1], full[2]);
}

}  // namespace
}  // namespace dbdesign
