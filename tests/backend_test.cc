// DbmsBackend seam tests: a conformance suite run against every
// backend implementation, plus TraceBackend record/replay round-trips.
//
// The conformance suite is the portability contract: a new backend (a
// real DBMS port) passes these before any designer component touches
// it. The round-trip tests pin the paper's portability claim down to
// the bit level — a recorded trace must replay to identical costs, and
// INUM run off a deserialized statistics snapshot must agree exactly
// with INUM run against the live engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>

#include "backend/inmemory_backend.h"
#include "backend/trace_backend.h"
#include "core/designer.h"
#include "inum/inum.h"
#include "sql/binder.h"
#include "whatif/whatif.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 4000;
    cfg.seed = 17;
    db_ = new Database(BuildSdssDatabase(cfg));
    workload_ = new Workload(
        GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, 5));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static IndexDef Idx(const char* table, std::vector<const char*> cols) {
    TableId t = db_->catalog().FindTable(table);
    IndexDef idx;
    idx.table = t;
    for (const char* c : cols) {
      idx.columns.push_back(db_->catalog().table(t).FindColumn(c));
    }
    return idx;
  }

  static Database* db_;
  static Workload* workload_;
};

Database* BackendTest::db_ = nullptr;
Workload* BackendTest::workload_ = nullptr;

/// The conformance contract every DbmsBackend implementation must obey.
void RunConformanceSuite(DbmsBackend& backend) {
  SCOPED_TRACE("backend: " + backend.name());

  // Catalog and statistics are present and consistent (primitive 2).
  ASSERT_GT(backend.catalog().num_tables(), 0);
  ASSERT_EQ(static_cast<int>(backend.all_stats().size()),
            backend.catalog().num_tables());
  for (TableId t = 0; t < backend.catalog().num_tables(); ++t) {
    EXPECT_GT(backend.stats(t).row_count, 0.0);
    EXPECT_EQ(static_cast<int>(backend.stats(t).columns.size()),
              backend.catalog().table(t).num_columns());
  }

  // Size estimates are honest: never zero (the paper's what-if fidelity
  // requirement).
  TableId photo = backend.catalog().FindTable("photoobj");
  ASSERT_NE(photo, kInvalidTableId);
  IndexDef ra{photo, {backend.catalog().table(photo).FindColumn("ra")}, false};
  EXPECT_GT(backend.EstimateIndexSize(ra).total_pages(), 0.0);

  // Cost calls (primitive 1) return finite positive costs, agree with
  // OptimizeQuery, and respond to designs.
  auto q = ParseAndBind(backend.catalog(),
                        "SELECT objid FROM photoobj WHERE ra < 30");
  ASSERT_TRUE(q.ok());
  PlannerKnobs knobs;
  PhysicalDesign empty;
  Result<double> base = backend.CostQuery(q.value(), empty, knobs);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_GT(base.value(), 0.0);
  Result<PlanResult> plan = backend.OptimizeQuery(q.value(), empty, knobs);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_DOUBLE_EQ(plan.value().cost, base.value());

  PhysicalDesign with_index;
  with_index.AddIndex(ra);
  Result<double> indexed = backend.CostQuery(q.value(), with_index, knobs);
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed.value(), base.value());

  // Batched costing equals per-call costing, element for element.
  std::vector<BoundQuery> queries = {q.value(), q.value(), q.value()};
  Result<std::vector<double>> batch = backend.CostBatch(
      std::span<const BoundQuery>(queries.data(), queries.size()), with_index,
      knobs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), queries.size());
  for (double c : batch.value()) EXPECT_DOUBLE_EQ(c, indexed.value());

  // Join control (primitive 3): the advertised toggles exist and
  // disabling the chosen method never lowers the cost.
  JoinControlCapabilities caps = backend.join_control();
  EXPECT_TRUE(caps.nested_loop || caps.hash_join || caps.merge_join ||
              caps.index_nested_loop);
  auto join = ParseAndBind(backend.catalog(),
                           "SELECT p.objid FROM photoobj p JOIN specobj s "
                           "ON p.objid = s.bestobjid");
  ASSERT_TRUE(join.ok());
  Result<double> all_methods = backend.CostQuery(join.value(), empty, knobs);
  ASSERT_TRUE(all_methods.ok());
  PlannerKnobs restricted = knobs;
  restricted.enable_hashjoin = false;
  restricted.enable_mergejoin = false;
  Result<double> forced = backend.CostQuery(join.value(), empty, restricted);
  ASSERT_TRUE(forced.ok());
  EXPECT_GE(forced.value(), all_methods.value() * 0.9999);

  // The optimizer-call telemetry never exceeds one invocation per cost
  // call (a replay backend legitimately reports zero) and resets.
  backend.ResetCallCount();
  (void)backend.CostQuery(q.value(), empty, knobs);
  EXPECT_LE(backend.num_optimizer_calls(), 1u);
  backend.ResetCallCount();
  EXPECT_EQ(backend.num_optimizer_calls(), 0u);
}

TEST_F(BackendTest, InMemoryBackendConformance) {
  InMemoryBackend backend(*db_);
  RunConformanceSuite(backend);

  // The in-memory engine really invokes its optimizer per cost call.
  backend.ResetCallCount();
  (void)backend.CostQuery(Q("SELECT objid FROM photoobj WHERE ra < 30"),
                          PhysicalDesign{}, PlannerKnobs{});
  EXPECT_EQ(backend.num_optimizer_calls(), 1u);
}

TEST_F(BackendTest, ReplayServesCostsWithZeroOptimizerCalls) {
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra < 30");
  ASSERT_TRUE(recorder->CostQuery(q, PhysicalDesign{}, PlannerKnobs{}).ok());
  auto replay = TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(
      replay.value()->CostQuery(q, PhysicalDesign{}, PlannerKnobs{}).ok());
  EXPECT_EQ(replay.value()->num_optimizer_calls(), 0u);
}

TEST_F(BackendTest, TraceVersionIsValidated) {
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  std::string json = recorder->ToJson();
  // A trace from a future format revision must be rejected up front.
  size_t pos = json.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  std::string future = json;
  future.replace(pos, 11, "\"version\":9");
  auto r = TraceBackend::FromJson(future);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  std::string none = json;
  none.replace(pos, 11, "\"versionx\":1");
  EXPECT_FALSE(TraceBackend::FromJson(none).ok());
}

TEST_F(BackendTest, TraceRecordBackendConformance) {
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  RunConformanceSuite(*recorder);
  EXPECT_GT(recorder->num_recorded_costs(), 0u);
}

TEST_F(BackendTest, TraceReplayBackendConformance) {
  // Drive the conformance suite through a recorder, then run the exact
  // same suite against the replayed trace: catalog/stats come from the
  // JSON snapshot, costs from the recorded calls.
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  RunConformanceSuite(*recorder);

  auto replay = TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  RunConformanceSuite(*replay.value());
}

TEST_F(BackendTest, ReadOnlyAttachmentRejectsStatisticsRefresh) {
  const Database& ro = *db_;
  InMemoryBackend backend(ro);
  Status s = backend.RefreshStatistics(0, AnalyzeOptions{});
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

TEST_F(BackendTest, MutableAttachmentRefreshesStatistics) {
  SdssConfig cfg;
  cfg.photoobj_rows = 500;
  cfg.seed = 3;
  Database db = BuildSdssDatabase(cfg);
  InMemoryBackend backend(db);
  EXPECT_TRUE(backend.RefreshAllStatistics().ok());
  EXPECT_FALSE(backend.RefreshStatistics(-1, AnalyzeOptions{}).ok());
}

TEST_F(BackendTest, TraceRoundTripReplaysIdenticalCosts) {
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);

  // Record the workload under several designs through the recorder.
  PhysicalDesign d1;
  d1.AddIndex(Idx("photoobj", {"ra"}));
  PhysicalDesign d2 = d1;
  d2.AddIndex(Idx("specobj", {"bestobjid"}));
  std::vector<PhysicalDesign> designs = {PhysicalDesign{}, d1, d2};

  PlannerKnobs knobs;
  std::vector<std::vector<double>> live;
  for (const PhysicalDesign& d : designs) {
    auto costs = recorder->CostBatch(
        std::span<const BoundQuery>(workload_->queries.data(),
                                    workload_->queries.size()),
        d, knobs);
    ASSERT_TRUE(costs.ok());
    live.push_back(costs.value());
  }

  auto replay = TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  for (size_t k = 0; k < designs.size(); ++k) {
    auto costs = replay.value()->CostBatch(
        std::span<const BoundQuery>(workload_->queries.data(),
                                    workload_->queries.size()),
        designs[k], knobs);
    ASSERT_TRUE(costs.ok()) << costs.status().ToString();
    for (size_t i = 0; i < workload_->size(); ++i) {
      EXPECT_DOUBLE_EQ(costs.value()[i], live[k][i]);
    }
  }

  // An unrecorded call surfaces as NotFound, not a sentinel cost.
  PhysicalDesign unseen;
  unseen.AddIndex(Idx("photoobj", {"dec"}));
  Result<double> miss =
      replay.value()->CostQuery(workload_->queries[0], unseen, knobs);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST_F(BackendTest, TraceRoundTripPreservesNonFiniteCosts) {
  // A backend can legitimately report an infinite cost (e.g. a knob
  // combination with no feasible plan). The old JSON encoding dumped
  // non-finite numbers as null, so such a trace replayed the cost as a
  // type-confused value (0.0); the sentinel encoding must round-trip
  // it exactly.
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  PlannerKnobs knobs;
  const BoundQuery& q = workload_->queries[0];
  ASSERT_TRUE(recorder->CostQuery(q, PhysicalDesign{}, knobs).ok());

  // Splice an infinite cost into the recorded call map under a real
  // call key (the public CallKey is exposed for exactly this kind of
  // test surgery).
  PhysicalDesign inf_design;
  inf_design.AddIndex(Idx("photoobj", {"dec"}));
  auto parsed = Json::Parse(recorder->ToJson());
  ASSERT_TRUE(parsed.ok());
  Json doc = parsed.value();
  doc["cost_calls"][TraceBackend::CallKey(q, inf_design, knobs)] =
      Json::Number(std::numeric_limits<double>::infinity());

  auto replay = TraceBackend::FromJson(doc.Dump());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  Result<double> cost = replay.value()->CostQuery(q, inf_design, knobs);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_TRUE(std::isinf(cost.value()));
  EXPECT_GT(cost.value(), 0.0);

  // The doubly-serialized trace is still lossless.
  auto again = TraceBackend::FromJson(replay.value()->ToJson());
  ASSERT_TRUE(again.ok());
  Result<double> cost2 = again.value()->CostQuery(q, inf_design, knobs);
  ASSERT_TRUE(cost2.ok());
  EXPECT_TRUE(std::isinf(cost2.value()));
}

TEST_F(BackendTest, TraceSnapshotPreservesStatisticsExactly) {
  // INUM's client-side reuse math is a pure function of catalog +
  // statistics + cost params. Running it off the deserialized snapshot
  // must reproduce the live engine's costs bit-for-bit — this is the
  // test that the JSON statistics round-trip is lossless.
  InMemoryBackend live(*db_);
  auto recorder = TraceBackend::Record(live);
  auto replay = TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  InumCostModel inum_live(live);
  InumCostModel inum_replay(*replay.value());

  PhysicalDesign design;
  design.AddIndex(Idx("photoobj", {"ra", "dec"}));
  design.AddIndex(Idx("specobj", {"z"}));
  for (const BoundQuery& q : workload_->queries) {
    EXPECT_DOUBLE_EQ(inum_replay.Cost(q, design), inum_live.Cost(q, design));
    EXPECT_DOUBLE_EQ(inum_replay.Cost(q, PhysicalDesign{}),
                     inum_live.Cost(q, PhysicalDesign{}));
  }
}

TEST_F(BackendTest, TraceSaveAndLoadFile) {
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  PlannerKnobs knobs;
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra < 10");
  Result<double> live = recorder->CostQuery(q, PhysicalDesign{}, knobs);
  ASSERT_TRUE(live.ok());

  std::string path = ::testing::TempDir() + "/dbdesign_trace.json";
  ASSERT_TRUE(recorder->SaveToFile(path).ok());
  auto replay = TraceBackend::LoadFromFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  Result<double> replayed =
      replay.value()->CostQuery(q, PhysicalDesign{}, knobs);
  ASSERT_TRUE(replayed.ok());
  EXPECT_DOUBLE_EQ(replayed.value(), live.value());
  std::remove(path.c_str());
}

TEST_F(BackendTest, BatchDeduplicatesRepeatedQueries) {
  InMemoryBackend backend(*db_);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra < 45");
  std::vector<BoundQuery> repeated(16, q);
  backend.ResetCallCount();
  auto costs = backend.CostBatch(
      std::span<const BoundQuery>(repeated.data(), repeated.size()),
      PhysicalDesign{}, PlannerKnobs{});
  ASSERT_TRUE(costs.ok());
  ASSERT_EQ(costs.value().size(), repeated.size());
  // One optimizer invocation serves all sixteen batched repeats.
  EXPECT_EQ(backend.num_optimizer_calls(), 1u);
}

TEST_F(BackendTest, WhatIfOptimizerRunsAgainstReplay) {
  // The designer's what-if surface works unchanged over a replayed
  // trace: same costs, and errors (not crashes) off the recorded path.
  InMemoryBackend inner(*db_);
  auto recorder = TraceBackend::Record(inner);
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra < 10");
  WhatIfOptimizer live(*recorder);
  ASSERT_TRUE(live.CreateHypotheticalIndex(Idx("photoobj", {"ra"})).ok());
  double live_cost = live.Cost(q);

  auto replay = TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok());
  WhatIfOptimizer from_trace(*replay.value());
  ASSERT_TRUE(
      from_trace.CreateHypotheticalIndex(Idx("photoobj", {"ra"})).ok());
  Result<double> replay_cost = from_trace.TryCost(q);
  ASSERT_TRUE(replay_cost.ok()) << replay_cost.status().ToString();
  EXPECT_DOUBLE_EQ(replay_cost.value(), live_cost);

  // Off-trace design: the Result channel carries the error.
  ASSERT_TRUE(
      from_trace.CreateHypotheticalIndex(Idx("photoobj", {"run"})).ok());
  EXPECT_FALSE(from_trace.TryCost(q).ok());
}

TEST_F(BackendTest, DesignerEvaluateDesignsBatched) {
  InMemoryBackend backend(*db_);
  Designer designer(backend);

  PhysicalDesign d1;
  d1.AddIndex(Idx("photoobj", {"ra"}));
  PhysicalDesign d2;
  d2.AddIndex(Idx("photoobj", {"ra", "dec"}));
  std::vector<BenefitReport> reports =
      designer.EvaluateDesigns(*workload_, {d1, d2});
  ASSERT_EQ(reports.size(), 2u);

  // Batched evaluation agrees with one-at-a-time evaluation.
  BenefitReport solo = designer.EvaluateDesign(*workload_, d1);
  ASSERT_EQ(solo.new_costs.size(), reports[0].new_costs.size());
  for (size_t i = 0; i < solo.new_costs.size(); ++i) {
    EXPECT_DOUBLE_EQ(solo.new_costs[i], reports[0].new_costs[i]);
    EXPECT_DOUBLE_EQ(solo.base_costs[i], reports[0].base_costs[i]);
  }
  EXPECT_GE(reports[0].average_benefit(), 0.0);
  EXPECT_GE(reports[1].average_benefit(), reports[0].average_benefit() - 0.5);
}

}  // namespace
}  // namespace dbdesign
