// Unit tests for the utility layer: Status/Result, Rng distributions,
// Bitset64, string helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/bitset64.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str.h"

namespace dbdesign {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not found: table foo");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kBindError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicAcrossReseed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  a.Reseed(123);
  b.Reseed(123);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(17);
  std::map<int64_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Zipf(100, 1.1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    counts[v]++;
  }
  // Rank 0 must dominate rank 10 under skew.
  EXPECT_GT(counts[0], counts[10] * 2);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(19);
  std::map<int64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.03);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = rng.SampleWithoutReplacement(20, 8);
    std::set<int> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 8u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 2, 3, 4, 5, 5, 5};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Bitset64Test, BasicOps) {
  Bitset64 s;
  EXPECT_TRUE(s.Empty());
  s.Set(3);
  s.Set(40);
  EXPECT_TRUE(s.Test(3));
  EXPECT_TRUE(s.Test(40));
  EXPECT_FALSE(s.Test(4));
  EXPECT_EQ(s.Count(), 2);
  EXPECT_EQ(s.Lowest(), 3);
  s.Reset(3);
  EXPECT_EQ(s.Lowest(), 40);
}

TEST(Bitset64Test, SetAlgebra) {
  Bitset64 a = Bitset64::Single(1) | Bitset64::Single(2);
  Bitset64 b = Bitset64::Single(2) | Bitset64::Single(3);
  EXPECT_EQ((a & b).Count(), 1);
  EXPECT_EQ((a | b).Count(), 3);
  EXPECT_EQ((a - b).Count(), 1);
  EXPECT_TRUE((a | b).Contains(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b));
}

TEST(Bitset64Test, FullSetAndIteration) {
  Bitset64 s = Bitset64::FullSet(5);
  EXPECT_EQ(s.Count(), 5);
  int expected = 0;
  for (int i : s.Elements()) EXPECT_EQ(i, expected++);
  EXPECT_EQ(expected, 5);
}

TEST(StrTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StrTest, JoinAndSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrTest, CaseAndPrefix) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("abc"), "ABC");
  EXPECT_TRUE(StartsWith("photoobj", "photo"));
  EXPECT_FALSE(StartsWith("ph", "photo"));
}

TEST(StrTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5, 3), "1.5");
  EXPECT_EQ(FormatDouble(2.0, 2), "2");
}

TEST(StrTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024), "3.5 MB");
}

}  // namespace
}  // namespace dbdesign
