// Unit tests for the minimal JSON model used by the trace backend.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.h"

namespace dbdesign {
namespace {

TEST(JsonTest, BuildsAndDumpsDeterministically) {
  Json root = Json::Object();
  root["name"] = Json::Str("trace");
  root["version"] = Json::Number(1);
  Json arr = Json::Array();
  arr.Append(Json::Number(1.5));
  arr.Append(Json::Bool(true));
  arr.Append(Json::Null());
  root["items"] = std::move(arr);
  EXPECT_EQ(root.Dump(),
            "{\"items\":[1.5,true,null],\"name\":\"trace\",\"version\":1}");
}

TEST(JsonTest, ParsesDocument) {
  auto r = Json::Parse(R"({"a": [1, 2.5, "x"], "b": {"c": false}})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Json& j = r.value();
  ASSERT_NE(j.Find("a"), nullptr);
  EXPECT_EQ(j.Find("a")->size(), 3u);
  EXPECT_DOUBLE_EQ(j.Find("a")->at(1).number(), 2.5);
  EXPECT_EQ(j.Find("a")->at(2).str(), "x");
  ASSERT_NE(j.Find("b"), nullptr);
  EXPECT_FALSE(j.Find("b")->Find("c")->bool_value());
  EXPECT_EQ(j.Find("missing"), nullptr);
}

TEST(JsonTest, RoundTripsStringsWithEscapes) {
  Json s = Json::Str("line1\nquote\" back\\slash \t end");
  auto r = Json::Parse(s.Dump());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().str(), "line1\nquote\" back\\slash \t end");
}

TEST(JsonTest, RoundTripsDoublesExactly) {
  // %.17g must reproduce IEEE doubles bit-for-bit — the trace replay
  // guarantee rests on this.
  const double cases[] = {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-17,
                          123456789.123456789};
  for (double d : cases) {
    auto r = Json::Parse(Json::Number(d).Dump());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().number(), d);
  }
}

TEST(JsonTest, NonFiniteNumbersRoundTripViaSentinel) {
  // JSON has no Infinity/NaN. The old encoding dumped them as null,
  // which replayed as a type-confused value; they now round-trip
  // through tagged string sentinels.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json::Number(inf).Dump(), "\"__nonfinite:inf\"");
  EXPECT_EQ(Json::Number(-inf).Dump(), "\"__nonfinite:-inf\"");
  EXPECT_EQ(Json::Number(std::nan("")).Dump(), "\"__nonfinite:nan\"");

  auto pos = Json::Parse(Json::Number(inf).Dump());
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(pos.value().is_number());
  EXPECT_EQ(pos.value().number(), inf);

  auto neg = Json::Parse(Json::Number(-inf).Dump());
  ASSERT_TRUE(neg.ok());
  ASSERT_TRUE(neg.value().is_number());
  EXPECT_EQ(neg.value().number(), -inf);

  auto nan = Json::Parse(Json::Number(std::nan("")).Dump());
  ASSERT_TRUE(nan.ok());
  ASSERT_TRUE(nan.value().is_number());
  EXPECT_TRUE(std::isnan(nan.value().number()));

  // Inside containers too (the shape a trace's cost map uses).
  Json obj = Json::Object();
  obj["cost"] = Json::Number(inf);
  auto round = Json::Parse(obj.Dump());
  ASSERT_TRUE(round.ok());
  ASSERT_NE(round.value().Find("cost"), nullptr);
  EXPECT_EQ(round.value().Find("cost")->number(), inf);

  // Unrecognized text in the tag namespace (e.g. a hand-edited
  // document) parses as a plain string instead of failing the load.
  auto foreign = Json::Parse("\"__nonfinite:bogus\"");
  ASSERT_TRUE(foreign.ok());
  ASSERT_TRUE(foreign.value().is_string());
  EXPECT_EQ(foreign.value().str(), "__nonfinite:bogus");
}

TEST(JsonTest, StringsInTheSentinelNamespaceStillRoundTrip) {
  // A real string payload that collides with the tag dumps behind an
  // escape marker and comes back as the same string — never as a
  // number.
  for (const char* payload :
       {"__nonfinite:inf", "__nonfinite:nan", "__nonfinite:esc:x",
        "__nonfinite:whatever"}) {
    Json s = Json::Str(payload);
    auto r = Json::Parse(s.Dump());
    ASSERT_TRUE(r.ok()) << payload;
    ASSERT_TRUE(r.value().is_string()) << payload;
    EXPECT_EQ(r.value().str(), payload);
  }
  // Untagged strings are untouched by the escape.
  EXPECT_EQ(Json::Str("nonfinite").Dump(), "\"nonfinite\"");
}

TEST(JsonTest, ParseErrorsAreStatuses) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_EQ(Json::Parse("{").status().code(), StatusCode::kParseError);
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  auto r = Json::Parse(R"("aAé")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().str(), "aA\xC3\xA9");
}

}  // namespace
}  // namespace dbdesign
