// Workload substrate tests: SDSS schema/data properties, template
// generation across all families, drift streams.

#include <gtest/gtest.h>

#include <set>

#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class SdssTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 5000;
    cfg.seed = 101;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* SdssTest::db_ = nullptr;

TEST_F(SdssTest, SchemaShape) {
  EXPECT_EQ(db_->catalog().num_tables(), 5);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ASSERT_NE(photo, kInvalidTableId);
  EXPECT_EQ(db_->catalog().table(photo).num_columns(), 25);
  EXPECT_EQ(db_->data(photo).NumRows(), 5000u);
  TableId spec = db_->catalog().FindTable(kSpecObj);
  EXPECT_EQ(db_->data(spec).NumRows(), 1000u);  // photoobj / 5
  TableId neigh = db_->catalog().FindTable(kNeighbors);
  EXPECT_EQ(db_->data(neigh).NumRows(), 10000u);  // photoobj * 2
}

TEST_F(SdssTest, StatisticsShapeMatchesDesignIntent) {
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);
  const TableStats& stats = db_->stats(photo);

  // objid sequential: perfectly clustered, unique.
  const ColumnStats& objid = stats.column(def.FindColumn("objid"));
  EXPECT_NEAR(objid.correlation, 1.0, 0.01);
  EXPECT_NEAR(objid.n_distinct, 5000.0, 1.0);

  // mjd grows with row order: strongly clustered.
  const ColumnStats& mjd = stats.column(def.FindColumn("mjd"));
  EXPECT_GT(mjd.correlation, 0.8);

  // ra drifts per run stripe: strictly less clustered than objid; at
  // production scale (many stripes) it decorrelates further — checked
  // in the 20k-row variant below.
  const ColumnStats& ra = stats.column(def.FindColumn("ra"));
  EXPECT_LT(std::abs(ra.correlation), std::abs(objid.correlation));
  EXPECT_GE(ra.min.AsDouble(), 0.0);
  EXPECT_LT(ra.max.AsDouble(), 360.0);

  // type is skewed: galaxy (3) must be the top MCV with ~65% frequency.
  const ColumnStats& type = stats.column(def.FindColumn("type"));
  ASSERT_FALSE(type.mcv.empty());
  EXPECT_EQ(type.mcv[0].value, Value(int64_t{3}));
  EXPECT_NEAR(type.mcv[0].frequency, 0.65, 0.05);
}

TEST(SdssScaleTest, RaDecorrelatesWithManyStripes) {
  SdssConfig cfg;
  cfg.photoobj_rows = 20000;  // 8 scan stripes
  cfg.seed = 5;
  Database db = BuildSdssDatabase(cfg);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  const TableDef& def = db.catalog().table(photo);
  double ra_corr = std::abs(
      db.stats(photo).column(def.FindColumn("ra")).correlation);
  EXPECT_LT(ra_corr, 0.6)
      << "ra must be substantially unclustered at production scale";
}

TEST_F(SdssTest, ForeignKeysResolve) {
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  TableId spec = db_->catalog().FindTable(kSpecObj);
  const TableDef& sdef = db_->catalog().table(spec);
  ColumnId best = sdef.FindColumn("bestobjid");
  // Every specobj.bestobjid must be a valid photoobj objid (i*16+1).
  std::set<int64_t> objids;
  ColumnId objid_col = db_->catalog().table(photo).FindColumn("objid");
  for (const Row& r : db_->data(photo).rows()) {
    objids.insert(r[static_cast<size_t>(objid_col)].AsInt());
  }
  for (const Row& r : db_->data(spec).rows()) {
    EXPECT_TRUE(objids.count(r[static_cast<size_t>(best)].AsInt()) > 0);
  }
}

TEST_F(SdssTest, DeterministicGeneration) {
  SdssConfig cfg;
  cfg.photoobj_rows = 500;
  cfg.seed = 7;
  Database a = BuildSdssDatabase(cfg);
  Database b = BuildSdssDatabase(cfg);
  TableId photo = a.catalog().FindTable(kPhotoObj);
  ASSERT_EQ(a.data(photo).NumRows(), b.data(photo).NumRows());
  for (RowId r = 0; r < a.data(photo).NumRows(); r += 37) {
    EXPECT_EQ(a.data(photo).row(r)[1].AsDouble(),
              b.data(photo).row(r)[1].AsDouble());
  }
}

class TemplateTest
    : public ::testing::TestWithParam<int> {};

TEST_P(TemplateTest, AllSeedsBindAndReferenceRealColumns) {
  SdssConfig cfg;
  cfg.photoobj_rows = 300;
  static Database db = BuildSdssDatabase(cfg);
  SdssTemplate t = static_cast<SdssTemplate>(GetParam());
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  for (int i = 0; i < 25; ++i) {
    BoundQuery q = GenerateSdssQuery(db, t, rng);
    EXPECT_GE(q.num_slots(), 1);
    // Each generated query must have at least one sargable predicate or
    // aggregate — pure full scans would make tuning moot.
    EXPECT_TRUE(!q.filters.empty() || !q.joins.empty() ||
                q.HasAggregates());
    // Round-trip through SQL.
    std::string sql = q.ToSql(db.catalog());
    EXPECT_FALSE(sql.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateTest,
                         ::testing::Range(0, kNumSdssTemplates),
                         [](const auto& param_info) {
                           return SdssTemplateName(
                               static_cast<SdssTemplate>(param_info.param));
                         });

TEST(WorkloadGenTest, MixWeightsAreRespected) {
  SdssConfig cfg;
  cfg.photoobj_rows = 300;
  Database db = BuildSdssDatabase(cfg);
  TemplateMix mix;  // only cone searches
  mix.weights[static_cast<int>(SdssTemplate::kConeSearch)] = 1.0;
  Workload w = GenerateWorkload(db, mix, 30, 11);
  ASSERT_EQ(w.size(), 30u);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  ColumnId ra = db.catalog().table(photo).FindColumn("ra");
  for (const BoundQuery& q : w.queries) {
    ASSERT_EQ(q.num_slots(), 1);
    EXPECT_EQ(q.tables[0], photo);
    bool has_ra = false;
    for (const BoundPredicate& p : q.filters) {
      has_ra |= p.column.column == ra;
    }
    EXPECT_TRUE(has_ra);
  }
}

TEST(WorkloadGenTest, WorkloadIdsAreSequential) {
  SdssConfig cfg;
  cfg.photoobj_rows = 300;
  Database db = BuildSdssDatabase(cfg);
  Workload w = GenerateWorkload(db, TemplateMix::Uniform(), 12, 13);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w.queries[i].id, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(w.WeightOf(i), 1.0);
  }
}

TEST(WorkloadGenTest, DriftingStreamPhases) {
  SdssConfig cfg;
  cfg.photoobj_rows = 300;
  Database db = BuildSdssDatabase(cfg);
  std::vector<BoundQuery> stream = GenerateDriftingStream(
      db, {TemplateMix::PhaseSelections(), TemplateMix::PhaseJoins()}, 40,
      17);
  ASSERT_EQ(stream.size(), 80u);
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, static_cast<int>(i));
  }
  // Phase 1 is selection-only (single slot); phase 2 is join-heavy.
  int joins_phase1 = 0;
  int joins_phase2 = 0;
  for (size_t i = 0; i < 40; ++i) joins_phase1 += !stream[i].joins.empty();
  for (size_t i = 40; i < 80; ++i) joins_phase2 += !stream[i].joins.empty();
  EXPECT_EQ(joins_phase1, 0);
  EXPECT_EQ(joins_phase2, 40);
}

TEST(WorkloadGenTest, StructuralHashDistinguishesQueries) {
  SdssConfig cfg;
  cfg.photoobj_rows = 300;
  Database db = BuildSdssDatabase(cfg);
  Workload w = GenerateWorkload(db, TemplateMix::Uniform(), 40, 19);
  std::set<uint64_t> hashes;
  std::set<std::string> sqls;
  for (const BoundQuery& q : w.queries) {
    hashes.insert(q.StructuralHash());
    sqls.insert(q.ToSql(db.catalog()));
  }
  // Hash cardinality must match SQL-text cardinality (no collisions,
  // no spurious distinctions).
  EXPECT_EQ(hashes.size(), sqls.size());

  // Id changes must not change the hash.
  BoundQuery q = w.queries[0];
  uint64_t h1 = q.StructuralHash();
  q.id = 9999;
  EXPECT_EQ(q.StructuralHash(), h1);
}

}  // namespace
}  // namespace dbdesign
