// Multi-tenant TuningServer tests: registry lifecycle, cross-session
// atom sharing over the shared store (pointer-identical rows, hit
// counters), copy-on-write isolation (one session's Refine never
// perturbs another's state or results), zero constraint leakage,
// RunBatch bit-identical to a serial replay at any thread count,
// coalescer result-transparency, and server-level degradation when a
// schema's backend goes bad underneath its sessions.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/fault_backend.h"
#include "backend/inmemory_backend.h"
#include "backend/resilient_backend.h"
#include "server/server.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

Database SmallDb(int rows = 1200, uint64_t seed = 31) {
  SdssConfig cfg;
  cfg.photoobj_rows = rows;
  cfg.seed = seed;
  return BuildSdssDatabase(cfg);
}

Workload SmallWorkload(const Database& db, int n = 6, uint64_t seed = 5) {
  return GenerateWorkload(db, TemplateMix::OfflineDefault(), n, seed);
}

void SetSessionWorkload(TuningServer& server, const std::string& id,
                        const Workload& w) {
  ASSERT_TRUE(server
                  .WithSession(id, [&](DesignSession& session) {
                    session.SetWorkload(w);
                  })
                  .ok());
}

void ExpectSameRecommendation(const IndexRecommendation& a,
                              const IndexRecommendation& b) {
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_EQ(a.indexes[i].Key(), b.indexes[i].Key());
  }
  EXPECT_EQ(a.total_size_pages, b.total_size_pages);
  EXPECT_EQ(a.base_cost, b.base_cost);
  EXPECT_EQ(a.recommended_cost, b.recommended_cost);
  EXPECT_EQ(a.per_query_cost, b.per_query_cost);
}

void ExpectSamePlan(const DeploymentPlan& a, const DeploymentPlan& b) {
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_EQ(a.indexes[i].Key(), b.indexes[i].Key());
  }
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.clusters, b.clusters);
  ASSERT_EQ(a.schedule.steps.size(), b.schedule.steps.size());
  for (size_t i = 0; i < a.schedule.steps.size(); ++i) {
    EXPECT_EQ(a.schedule.steps[i].index.Key(), b.schedule.steps[i].index.Key());
    EXPECT_EQ(a.schedule.steps[i].cost_after, b.schedule.steps[i].cost_after);
  }
  EXPECT_EQ(a.schedule.base_cost, b.schedule.base_cost);
  EXPECT_EQ(a.schedule.final_cost, b.schedule.final_cost);
  EXPECT_EQ(a.schedule.total_pages, b.schedule.total_pages);
}

void ExpectSameResponse(const SessionResponse& a, const SessionResponse& b) {
  EXPECT_EQ(a.session, b.session);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.status.code(), b.status.code());
  ASSERT_EQ(a.recommendation.has_value(), b.recommendation.has_value());
  if (a.recommendation.has_value()) {
    ExpectSameRecommendation(*a.recommendation, *b.recommendation);
  }
  ASSERT_EQ(a.plan.has_value(), b.plan.has_value());
  if (a.plan.has_value()) ExpectSamePlan(*a.plan, *b.plan);
}

TEST(ServerTest, RegistryLifecycle) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  TuningServer server;

  EXPECT_EQ(server.RegisterSchema("", backend).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
  EXPECT_EQ(server.RegisterSchema("sdss", backend).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server.SchemaNames(), std::vector<std::string>{"sdss"});

  EXPECT_EQ(server.OpenSession("a", "nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(server.OpenSession("", "sdss").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.OpenSession("a", "sdss").ok());
  EXPECT_EQ(server.OpenSession("a", "sdss").code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(server.OpenSession("b", "sdss").ok());
  EXPECT_TRUE(server.HasSession("a"));
  EXPECT_EQ(server.SessionIds().size(), 2u);

  ASSERT_TRUE(server.CloseSession("a").ok());
  EXPECT_FALSE(server.HasSession("a"));
  EXPECT_EQ(server.CloseSession("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(server.WithSession("a", [](DesignSession&) {}).code(),
            StatusCode::kNotFound);

  TuningServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_open, 1u);
  EXPECT_EQ(stats.sessions_total, 2u);
}

// Sessions tuning the same schema share atom rows: the second session's
// first Recommend adopts the first session's published rows (pointer
// identity, not just value equality) and its results are bit-identical.
TEST(ServerTest, SharedSchemaSessionsShareAtomRows) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db);

  TuningServer server;
  ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
  ASSERT_TRUE(server.OpenSession("a", "sdss").ok());
  ASSERT_TRUE(server.OpenSession("b", "sdss").ok());
  SetSessionWorkload(server, "a", w);
  SetSessionWorkload(server, "b", w);

  std::vector<SessionResponse> responses = server.RunBatch({
      {"a", SessionOp::kRecommend, {}},
  });
  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status.ToString();
  responses.push_back(server.RunBatch({{"b", SessionOp::kRecommend, {}}})[0]);
  ASSERT_TRUE(responses[1].status.ok()) << responses[1].status.ToString();
  ExpectSameRecommendation(*responses[0].recommendation,
                           *responses[1].recommendation);

  // b was served entirely from a's populates.
  Result<AtomStoreStats> b_stats = server.SessionAtomStats("b");
  ASSERT_TRUE(b_stats.ok());
  EXPECT_GT(b_stats.value().hits, 0u);
  EXPECT_EQ(b_stats.value().misses, 0u);

  // The shared rows are the same objects, not copies.
  std::vector<std::shared_ptr<const CoPhyAtomRow>> rows_a;
  std::vector<std::shared_ptr<const CoPhyAtomRow>> rows_b;
  ASSERT_TRUE(server
                  .WithSession("a", [&](DesignSession& s) {
                    rows_a = s.prepared_state().rows;
                  })
                  .ok());
  ASSERT_TRUE(server
                  .WithSession("b", [&](DesignSession& s) {
                    rows_b = s.prepared_state().rows;
                  })
                  .ok());
  ASSERT_EQ(rows_a.size(), rows_b.size());
  ASSERT_FALSE(rows_a.empty());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].get(), rows_b[i].get()) << "row " << i;
  }

  AtomStoreStats store = server.atom_store().stats();
  EXPECT_GT(store.publishes, 0u);
  EXPECT_GT(store.hits, 0u);
  EXPECT_EQ(store.repopulates, 0u);
}

// Schema identity is structural: two separately-built but identical
// substrates fingerprint the same and share rows across schema names;
// a different substrate fingerprints differently and shares nothing.
TEST(ServerTest, SchemaFingerprintGovernsSharing) {
  Database db1 = SmallDb(1200, 31);
  Database db2 = SmallDb(1200, 31);   // identical build
  Database other = SmallDb(900, 77);  // different substrate
  InMemoryBackend be1(db1);
  InMemoryBackend be2(db2);
  InMemoryBackend be3(other);

  TuningServer server;
  ASSERT_TRUE(server.RegisterSchema("s1", be1).ok());
  ASSERT_TRUE(server.RegisterSchema("s2", be2).ok());
  ASSERT_TRUE(server.RegisterSchema("other", be3).ok());
  ASSERT_TRUE(server.OpenSession("a", "s1").ok());
  ASSERT_TRUE(server.OpenSession("b", "s2").ok());
  ASSERT_TRUE(server.OpenSession("c", "other").ok());

  Result<uint64_t> fp_a = server.SessionSchemaFingerprint("a");
  Result<uint64_t> fp_b = server.SessionSchemaFingerprint("b");
  Result<uint64_t> fp_c = server.SessionSchemaFingerprint("c");
  ASSERT_TRUE(fp_a.ok() && fp_b.ok() && fp_c.ok());
  EXPECT_EQ(fp_a.value(), fp_b.value());
  EXPECT_NE(fp_a.value(), fp_c.value());

  Workload w1 = SmallWorkload(db1);
  SetSessionWorkload(server, "a", w1);
  SetSessionWorkload(server, "b", SmallWorkload(db2));
  SetSessionWorkload(server, "c", SmallWorkload(other));

  ASSERT_TRUE(server.RunBatch({{"a", SessionOp::kRecommend, {}}})[0]
                  .status.ok());
  ASSERT_TRUE(server.RunBatch({{"b", SessionOp::kRecommend, {}}})[0]
                  .status.ok());
  ASSERT_TRUE(server.RunBatch({{"c", SessionOp::kRecommend, {}}})[0]
                  .status.ok());

  Result<AtomStoreStats> b_stats = server.SessionAtomStats("b");
  Result<AtomStoreStats> c_stats = server.SessionAtomStats("c");
  ASSERT_TRUE(b_stats.ok() && c_stats.ok());
  EXPECT_GT(b_stats.value().hits, 0u) << "identical substrate must share";
  EXPECT_EQ(c_stats.value().hits, 0u) << "distinct substrate must not share";
}

// Zero constraint leakage + copy-on-write: a's pins/vetoes change a's
// results only; b's shared rows are untouched (same pointers) and b's
// next Recommend is bit-identical to a session that tuned alone.
TEST(ServerTest, ConstraintIsolationAndCopyOnWrite) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db, 8, 11);

  // Solo baseline: one session, no neighbors.
  Database solo_db = SmallDb();
  Designer solo_designer(solo_db);
  DesignSession solo(solo_designer);
  solo.SetWorkload(w);
  Result<IndexRecommendation> baseline = solo.Recommend();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline.value().indexes.empty());

  TuningServer server;
  ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
  ASSERT_TRUE(server.OpenSession("a", "sdss").ok());
  ASSERT_TRUE(server.OpenSession("b", "sdss").ok());
  SetSessionWorkload(server, "a", w);
  SetSessionWorkload(server, "b", w);

  auto first = server.RunBatch({{"a", SessionOp::kRecommend, {}},
                                {"b", SessionOp::kRecommend, {}}});
  ASSERT_TRUE(first[0].status.ok());
  ASSERT_TRUE(first[1].status.ok());
  ExpectSameRecommendation(*first[1].recommendation, baseline.value());

  std::vector<std::shared_ptr<const CoPhyAtomRow>> b_rows_before;
  ASSERT_TRUE(server
                  .WithSession("b", [&](DesignSession& s) {
                    b_rows_before = s.prepared_state().rows;
                  })
                  .ok());

  // a vetoes its own top recommendation — a visible, binding edit.
  ConstraintDelta delta;
  delta.veto.push_back(first[0].recommendation->indexes.front());
  auto refined = server.RunBatch({{"a", SessionOp::kRefine, delta}});
  ASSERT_TRUE(refined[0].status.ok()) << refined[0].status.ToString();
  for (const IndexDef& idx : refined[0].recommendation->indexes) {
    EXPECT_FALSE(idx == delta.veto.front()) << "veto must bind for a";
  }

  // COW: b's rows are the same objects as before a's edit.
  std::vector<std::shared_ptr<const CoPhyAtomRow>> b_rows_after;
  ASSERT_TRUE(server
                  .WithSession("b", [&](DesignSession& s) {
                    b_rows_after = s.prepared_state().rows;
                  })
                  .ok());
  ASSERT_EQ(b_rows_before.size(), b_rows_after.size());
  for (size_t i = 0; i < b_rows_before.size(); ++i) {
    EXPECT_EQ(b_rows_before[i].get(), b_rows_after[i].get()) << "row " << i;
  }

  // No leakage: b still matches the solo session exactly.
  auto again = server.RunBatch({{"b", SessionOp::kRecommend, {}}});
  ASSERT_TRUE(again[0].status.ok());
  ExpectSameRecommendation(*again[0].recommendation, baseline.value());
}

// The cluster partition rides inside the prepared state (it is derived
// from the shared atom rows, not stored with them), so cluster-
// decomposed solving composes with cross-session sharing: sessions over
// pointer-identical rows derive identical partitions, and one session's
// constraint edit — which re-solves only its own dirtied clusters via
// its private solver cache — leaves the neighbor's partition untouched.
TEST(ServerTest, ClusterPartitionIsPerSessionOverSharedRows) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db, 8, 11);

  TuningServer server;
  ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
  ASSERT_TRUE(server.OpenSession("a", "sdss").ok());
  ASSERT_TRUE(server.OpenSession("b", "sdss").ok());
  SetSessionWorkload(server, "a", w);
  SetSessionWorkload(server, "b", w);

  auto first = server.RunBatch({{"a", SessionOp::kRecommend, {}},
                                {"b", SessionOp::kRecommend, {}}});
  ASSERT_TRUE(first[0].status.ok());
  ASSERT_TRUE(first[1].status.ok());

  ClusterPartition part_a, part_b;
  std::vector<std::shared_ptr<const CoPhyAtomRow>> rows_a, rows_b;
  ASSERT_TRUE(server
                  .WithSession("a", [&](DesignSession& s) {
                    part_a = s.prepared_state().clusters;
                    rows_a = s.prepared_state().rows;
                  })
                  .ok());
  ASSERT_TRUE(server
                  .WithSession("b", [&](DesignSession& s) {
                    part_b = s.prepared_state().clusters;
                    rows_b = s.prepared_state().rows;
                  })
                  .ok());
  // Shared rows, independent (but identical) partitions.
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].get(), rows_b[i].get()) << "row " << i;
  }
  ASSERT_GT(part_a.num_clusters(), 0);
  EXPECT_EQ(part_a.clusters, part_b.clusters);
  EXPECT_EQ(part_a.cluster_of, part_b.cluster_of);

  // a's veto re-solve must not perturb b's partition (or rows).
  ConstraintDelta delta;
  delta.veto.push_back(first[0].recommendation->indexes.front());
  ASSERT_TRUE(server.RunBatch({{"a", SessionOp::kRefine, delta}})[0]
                  .status.ok());
  ClusterPartition part_b_after;
  std::vector<std::shared_ptr<const CoPhyAtomRow>> rows_b_after;
  ASSERT_TRUE(server
                  .WithSession("b", [&](DesignSession& s) {
                    part_b_after = s.prepared_state().clusters;
                    rows_b_after = s.prepared_state().rows;
                  })
                  .ok());
  EXPECT_EQ(part_b.clusters, part_b_after.clusters);
  ASSERT_EQ(rows_b.size(), rows_b_after.size());
  for (size_t i = 0; i < rows_b.size(); ++i) {
    EXPECT_EQ(rows_b[i].get(), rows_b_after[i].get()) << "row " << i;
  }
}

// The batch scheduler is transparent: a mixed multi-session batch run
// with full parallelism produces bit-identical responses to the same
// batch on a serial (num_threads = 1) server.
TEST(ServerTest, RunBatchMatchesSerialReplay) {
  auto build = [](int num_threads, std::vector<SessionResponse>& out,
                  Database& db1, Database& db2) {
    TuningServerOptions opts;
    opts.num_threads = num_threads;
    InMemoryBackend be1(db1);
    InMemoryBackend be2(db2);
    TuningServer server(opts);
    ASSERT_TRUE(server.RegisterSchema("s1", be1).ok());
    ASSERT_TRUE(server.RegisterSchema("s2", be2).ok());

    Workload w1 = SmallWorkload(db1, 6, 5);
    Workload w1b = SmallWorkload(db1, 5, 19);
    Workload w2 = SmallWorkload(db2, 6, 7);
    const char* ids[] = {"a", "b", "c", "d", "e", "f"};
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(server.OpenSession(ids[i], i < 4 ? "s1" : "s2").ok());
    }
    for (const char* id : {"a", "b", "c"}) SetSessionWorkload(server, id, w1);
    SetSessionWorkload(server, "d", w1b);
    for (const char* id : {"e", "f"}) SetSessionWorkload(server, id, w2);

    ConstraintDelta budget;
    budget.storage_budget_pages = 400.0;
    std::vector<SessionRequest> requests = {
        {"a", SessionOp::kRecommend, {}},
        {"b", SessionOp::kRecommend, {}},
        {"c", SessionOp::kRecommend, {}},
        {"d", SessionOp::kRecommend, {}},
        {"e", SessionOp::kRecommend, {}},
        {"f", SessionOp::kRecommend, {}},
        {"a", SessionOp::kRefine, budget},
        {"b", SessionOp::kPlanDeployment, {}},
        {"e", SessionOp::kPlanDeployment, {}},
        {"ghost", SessionOp::kRecommend, {}},
        {"a", SessionOp::kPlanDeployment, {}},
        {"d", SessionOp::kRefine, budget},
    };
    out = server.RunBatch(requests);
  };

  std::vector<SessionResponse> parallel_out;
  std::vector<SessionResponse> serial_out;
  {
    Database db1 = SmallDb(1200, 31);
    Database db2 = SmallDb(900, 77);
    build(/*num_threads=*/0, parallel_out, db1, db2);
  }
  {
    Database db1 = SmallDb(1200, 31);
    Database db2 = SmallDb(900, 77);
    build(/*num_threads=*/1, serial_out, db1, db2);
  }

  ASSERT_EQ(parallel_out.size(), serial_out.size());
  for (size_t i = 0; i < parallel_out.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameResponse(parallel_out[i], serial_out[i]);
  }
  // The unknown session fails honestly; everything else succeeds.
  EXPECT_EQ(parallel_out[9].status.code(), StatusCode::kNotFound);
  for (size_t i = 0; i < parallel_out.size(); ++i) {
    if (i != 9) {
      EXPECT_TRUE(parallel_out[i].status.ok()) << i;
    }
  }
}

// The coalescer is result-transparent: with INUM forced through the
// backend seam, concurrent cold sessions produce the same answers with
// coalescing on and off, and coalescing actually sees traffic.
TEST(ServerTest, CoalescerPreservesResults) {
  auto run = [](bool coalesce, std::vector<SessionResponse>& out,
                CoalescerStats& stats) {
    Database db = SmallDb(800, 13);
    InMemoryBackend backend(db);
    TuningServerOptions opts;
    opts.designer.cophy.inum.force_exact = true;
    opts.coalesce_backend_calls = coalesce;
    TuningServer server(opts);
    ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());

    Workload w = SmallWorkload(db, 5, 3);
    const char* ids[] = {"a", "b", "c", "d"};
    std::vector<SessionRequest> requests;
    for (const char* id : ids) {
      ASSERT_TRUE(server.OpenSession(id, "sdss").ok());
      SetSessionWorkload(server, id, w);
      requests.push_back({id, SessionOp::kRecommend, {}});
    }
    out = server.RunBatch(requests);
    stats = server.stats().coalescer;
  };

  std::vector<SessionResponse> with;
  std::vector<SessionResponse> without;
  CoalescerStats stats_with;
  CoalescerStats stats_without;
  run(true, with, stats_with);
  run(false, without, stats_without);

  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(with[i].status.ok()) << with[i].status.ToString();
    ExpectSameResponse(with[i], without[i]);
  }
  EXPECT_GT(stats_with.calls, 0u);
  EXPECT_LE(stats_with.round_trips, stats_with.calls);
  EXPECT_EQ(stats_without.calls, 0u) << "disabled coalescer must see nothing";
}

// Server-level degradation: one schema's backend failing terminally
// yields honest per-request Statuses on its sessions while sessions on
// healthy schemas keep working; a recoverable backend stays
// bit-identical to a clean run.
TEST(ServerTest, DegradedSchemaDoesNotPoisonTheServer) {
  Database db = SmallDb(800, 13);
  Workload w = SmallWorkload(db, 5, 3);

  TuningServerOptions opts;
  opts.designer.cophy.inum.force_exact = true;

  // Clean baseline for the recoverable comparison.
  IndexRecommendation clean;
  {
    InMemoryBackend backend(db);
    TuningServer server(opts);
    ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
    ASSERT_TRUE(server.OpenSession("ref", "sdss").ok());
    SetSessionWorkload(server, "ref", w);
    auto out = server.RunBatch({{"ref", SessionOp::kRecommend, {}}});
    ASSERT_TRUE(out[0].status.ok()) << out[0].status.ToString();
    clean = *out[0].recommendation;
  }

  InMemoryBackend flaky_inner(db);
  FaultInjectingBackend flaky(flaky_inner, FaultPlan::Transient(0xB0B, 0.2, 2));
  RetryPolicy policy;
  policy.max_attempts = 4;
  ResilientBackend flaky_resilient(flaky, policy);

  InMemoryBackend dead_inner(db);
  FaultInjectingBackend dead(dead_inner, FaultPlan::Transient(0xCAFE, 1.0, 64));
  RetryPolicy strict;
  strict.max_attempts = 2;
  ResilientBackend dead_resilient(dead, strict);

  InMemoryBackend healthy_backend(db);
  TuningServer server(opts);
  ASSERT_TRUE(server.RegisterSchema("healthy", healthy_backend).ok());
  ASSERT_TRUE(server.RegisterSchema("flaky", flaky_resilient).ok());
  ASSERT_TRUE(server.RegisterSchema("dead", dead_resilient).ok());
  ASSERT_TRUE(server.OpenSession("h", "healthy").ok());
  ASSERT_TRUE(server.OpenSession("r", "flaky").ok());
  ASSERT_TRUE(server.OpenSession("x", "dead").ok());
  SetSessionWorkload(server, "h", w);
  SetSessionWorkload(server, "r", w);
  SetSessionWorkload(server, "x", w);

  auto out = server.RunBatch({{"x", SessionOp::kRecommend, {}},
                              {"h", SessionOp::kRecommend, {}},
                              {"r", SessionOp::kRecommend, {}}});

  // The dead schema degrades honestly...
  EXPECT_FALSE(out[0].status.ok());
  EXPECT_TRUE(out[0].status.IsRetryable()) << out[0].status.ToString();
  // ...while its neighbors are untouched, and the recoverable backend
  // is bit-identical to the clean run.
  ASSERT_TRUE(out[1].status.ok()) << out[1].status.ToString();
  ASSERT_TRUE(out[2].status.ok()) << out[2].status.ToString();
  ExpectSameRecommendation(*out[1].recommendation, clean);
  ExpectSameRecommendation(*out[2].recommendation, clean);

  // The degraded session recovers once its backend does: the fault
  // plan is per-call-schedule, so a server that keeps serving can keep
  // answering other sessions and report the failure to this one only.
  EXPECT_TRUE(server.HasSession("x"));
}

// Closing sessions underneath a running batch is safe: in-flight
// requests complete on the reference-counted entry, later lookups get
// honest kNotFound, and the registry stays consistent.
TEST(ServerTest, CloseDuringBatchIsSafe) {
  Database db = SmallDb(800, 13);
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db, 5, 3);

  TuningServer server;
  ASSERT_TRUE(server.RegisterSchema("sdss", backend).ok());
  constexpr int kSessions = 8;
  std::vector<SessionRequest> requests;
  for (int i = 0; i < kSessions; ++i) {
    std::string id = "s" + std::to_string(i);
    ASSERT_TRUE(server.OpenSession(id, "sdss").ok());
    SetSessionWorkload(server, id, w);
    requests.push_back({id, SessionOp::kRecommend, {}});
    requests.push_back({id, SessionOp::kPlanDeployment, {}});
  }

  std::vector<SessionResponse> out;
  std::thread batch([&] { out = server.RunBatch(requests); });
  // Race opens/closes against the batch; entries resolved before a
  // close still serve their requests.
  for (int i = 0; i < kSessions; i += 2) {
    ASSERT_TRUE(server.CloseSession("s" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(server.OpenSession("late", "sdss").ok());
  batch.join();

  ASSERT_EQ(out.size(), requests.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].status.ok() ||
                out[i].status.code() == StatusCode::kNotFound)
        << i << ": " << out[i].status.ToString();
  }
  EXPECT_EQ(server.SessionIds().size(), kSessions / 2 + 1);
  // Closed ids are reusable and the server still serves.
  ASSERT_TRUE(server.OpenSession("s0", "sdss").ok());
  SetSessionWorkload(server, "s0", w);
  auto again = server.RunBatch({{"s0", SessionOp::kRecommend, {}}});
  EXPECT_TRUE(again[0].status.ok()) << again[0].status.ToString();
}

}  // namespace
}  // namespace dbdesign
