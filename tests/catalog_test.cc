// Unit tests for catalog: values, schema, statistics, design descriptors.

#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/design.h"
#include "catalog/schema.h"
#include "catalog/stats.h"
#include "catalog/value.h"

namespace dbdesign {
namespace {

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.0)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
  EXPECT_TRUE(Value(3.0) == Value(int64_t{3}));
}

TEST(ValueTest, CompareString) {
  EXPECT_LT(Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  EXPECT_TRUE(Value(std::string("x")) == Value(std::string("x")));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "'hi'");
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value(int64_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_EQ(Value(std::string("abc")).Hash(), Value(std::string("abc")).Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(SchemaTest, FindColumnAndWidth) {
  TableDef def("t", {{"a", DataType::kInt64, 8}, {"b", DataType::kDouble, 8}});
  EXPECT_EQ(def.FindColumn("b"), 1);
  EXPECT_EQ(def.FindColumn("zz"), kInvalidColumnId);
  EXPECT_DOUBLE_EQ(def.RowWidthBytes(), kTupleOverheadBytes + 16.0);
  EXPECT_DOUBLE_EQ(def.PartialRowWidthBytes({0}), kTupleOverheadBytes + 8.0);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  auto id = cat.AddTable(TableDef("t1", {{"a", DataType::kInt64, 8}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cat.FindTable("t1"), id.value());
  EXPECT_EQ(cat.FindTable("nope"), kInvalidTableId);
  auto dup = cat.AddTable(TableDef("t1", {}));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

std::vector<Value> IntColumn(const std::vector<int64_t>& v) {
  std::vector<Value> out;
  out.reserve(v.size());
  for (int64_t x : v) out.emplace_back(x);
  return out;
}

TEST(StatsTest, ExactNdvAndMinMax) {
  ColumnStats s = BuildColumnStats(IntColumn({5, 1, 3, 3, 5, 9}));
  EXPECT_DOUBLE_EQ(s.n_distinct, 4.0);
  EXPECT_EQ(s.min, Value(int64_t{1}));
  EXPECT_EQ(s.max, Value(int64_t{9}));
}

TEST(StatsTest, HistogramBoundsAreSorted) {
  std::vector<int64_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back((i * 7919) % 503);
  ColumnStats s = BuildColumnStats(IntColumn(data));
  ASSERT_TRUE(s.HasHistogram());
  for (size_t i = 1; i < s.histogram.size(); ++i) {
    EXPECT_LE(s.histogram[i - 1].NumericPosition(),
              s.histogram[i].NumericPosition());
  }
  EXPECT_EQ(s.histogram.front(), s.min);
  EXPECT_EQ(s.histogram.back(), s.max);
}

TEST(StatsTest, McvCapturesSkew) {
  std::vector<int64_t> data;
  for (int i = 0; i < 900; ++i) data.push_back(7);
  for (int i = 0; i < 100; ++i) data.push_back(i + 100);
  ColumnStats s = BuildColumnStats(IntColumn(data));
  ASSERT_FALSE(s.mcv.empty());
  EXPECT_EQ(s.mcv[0].value, Value(int64_t{7}));
  EXPECT_NEAR(s.mcv[0].frequency, 0.9, 0.01);
}

TEST(StatsTest, CorrelationSequentialIsOne) {
  std::vector<int64_t> data;
  for (int i = 0; i < 500; ++i) data.push_back(i);
  ColumnStats s = BuildColumnStats(IntColumn(data));
  EXPECT_NEAR(s.correlation, 1.0, 1e-9);
}

TEST(StatsTest, CorrelationReversedIsMinusOne) {
  std::vector<int64_t> data;
  for (int i = 500; i > 0; --i) data.push_back(i);
  ColumnStats s = BuildColumnStats(IntColumn(data));
  EXPECT_NEAR(s.correlation, -1.0, 1e-9);
}

TEST(StatsTest, CorrelationShuffledIsSmall) {
  std::vector<int64_t> data;
  for (int i = 0; i < 2000; ++i) data.push_back((i * 48271) % 2003);
  ColumnStats s = BuildColumnStats(IntColumn(data));
  EXPECT_LT(std::abs(s.correlation), 0.2);
}

TEST(StatsTest, HeapPagesScaleWithRows) {
  TableDef def("t", {{"a", DataType::kInt64, 8}, {"b", DataType::kInt64, 8}});
  TableStats s1;
  s1.row_count = 1000;
  TableStats s2;
  s2.row_count = 100000;
  EXPECT_GT(s2.HeapPages(def), s1.HeapPages(def) * 50);
  EXPECT_GE(s1.HeapPages(def), 1.0);
}

TEST(DesignTest, IndexSizeNeverZero) {
  TableDef def("t", {{"a", DataType::kInt64, 8}});
  TableStats stats;
  stats.row_count = 1.0;
  stats.columns.emplace_back();
  IndexDef idx;
  idx.table = 0;
  idx.columns = {0};
  IndexSizeEstimate est = EstimateIndexSize(idx, def, stats);
  EXPECT_GE(est.leaf_pages, 1.0);
  EXPECT_GE(est.total_pages(), 1.0);
  EXPECT_GE(est.height, 1.0);
}

TEST(DesignTest, IndexSizeGrowsWithColumnsAndRows) {
  TableDef def("t", {{"a", DataType::kInt64, 8},
                     {"b", DataType::kInt64, 8},
                     {"c", DataType::kInt64, 8}});
  TableStats stats;
  stats.row_count = 200000;
  IndexDef one{0, {0}, false};
  IndexDef three{0, {0, 1, 2}, false};
  EXPECT_GT(EstimateIndexSize(three, def, stats).total_pages(),
            EstimateIndexSize(one, def, stats).total_pages());
  TableStats small;
  small.row_count = 1000;
  EXPECT_GT(EstimateIndexSize(one, def, stats).total_pages(),
            EstimateIndexSize(one, def, small).total_pages());
}

TEST(DesignTest, AddRemoveHasIndex) {
  PhysicalDesign d;
  IndexDef a{0, {1, 2}, false};
  IndexDef b{0, {2}, false};
  EXPECT_TRUE(d.AddIndex(a));
  EXPECT_FALSE(d.AddIndex(a));  // dedup
  EXPECT_TRUE(d.AddIndex(b));
  EXPECT_TRUE(d.HasIndex(a));
  EXPECT_EQ(d.IndexesOn(0).size(), 2u);
  EXPECT_TRUE(d.RemoveIndex(a));
  EXPECT_FALSE(d.RemoveIndex(a));
  EXPECT_FALSE(d.HasIndex(a));
}

TEST(DesignTest, FingerprintDistinguishesDesigns) {
  PhysicalDesign d1;
  PhysicalDesign d2;
  d1.AddIndex(IndexDef{0, {1}, false});
  d2.AddIndex(IndexDef{0, {2}, false});
  EXPECT_NE(d1.Fingerprint(), d2.Fingerprint());
  PhysicalDesign d3;
  d3.AddIndex(IndexDef{0, {1}, false});
  EXPECT_EQ(d1.Fingerprint(), d3.Fingerprint());
  EXPECT_TRUE(d1 == d3);
}

TEST(DesignTest, FingerprintOrderInsensitive) {
  PhysicalDesign d1;
  PhysicalDesign d2;
  d1.AddIndex(IndexDef{0, {1}, false});
  d1.AddIndex(IndexDef{1, {0}, false});
  d2.AddIndex(IndexDef{1, {0}, false});
  d2.AddIndex(IndexDef{0, {1}, false});
  EXPECT_EQ(d1.Fingerprint(), d2.Fingerprint());
}

TEST(DesignTest, VerticalPartitioningCoverage) {
  TableDef def("t", {{"a", DataType::kInt64, 8},
                     {"b", DataType::kInt64, 8},
                     {"c", DataType::kInt64, 8}});
  VerticalPartitioning vp;
  vp.table = 0;
  vp.fragments = {VerticalFragment{{0, 1}}, VerticalFragment{{2}}};
  EXPECT_TRUE(vp.CoversTable(def));
  vp.fragments = {VerticalFragment{{0, 1}}};
  EXPECT_FALSE(vp.CoversTable(def));
}

TEST(DesignTest, ReplicationFactor) {
  TableDef def("t", {{"a", DataType::kInt64, 8}, {"b", DataType::kInt64, 8}});
  VerticalPartitioning vp;
  vp.table = 0;
  vp.fragments = {VerticalFragment{{0, 1}}, VerticalFragment{{0}}};
  EXPECT_NEAR(vp.ReplicationFactor(def), 1.5, 1e-9);
}

TEST(DesignTest, PartitioningAccessors) {
  PhysicalDesign d;
  EXPECT_EQ(d.vertical(0), nullptr);
  VerticalPartitioning vp;
  vp.table = 0;
  vp.fragments = {VerticalFragment{{0}}};
  d.SetVerticalPartitioning(vp);
  ASSERT_NE(d.vertical(0), nullptr);
  EXPECT_TRUE(d.HasPartitions());
  d.ClearVerticalPartitioning(0);
  EXPECT_EQ(d.vertical(0), nullptr);

  HorizontalPartitioning hp;
  hp.table = 1;
  hp.column = 0;
  hp.bounds = {Value(int64_t{10}), Value(int64_t{20})};
  d.SetHorizontalPartitioning(hp);
  ASSERT_NE(d.horizontal(1), nullptr);
  EXPECT_EQ(d.horizontal(1)->num_partitions(), 3);
}

TEST(DesignTest, DisplayName) {
  Catalog cat;
  cat.AddTable(TableDef("photoobj", {{"ra", DataType::kDouble, 8},
                                     {"dec", DataType::kDouble, 8}}));
  IndexDef idx{0, {0, 1}, false};
  EXPECT_EQ(idx.DisplayName(cat), "idx_photoobj_ra_dec");
}

}  // namespace
}  // namespace dbdesign
