// Bounded atom caching tests: the SchemaFingerprint histogram/MCV
// collision fix (regression tests that fail against the pre-fix
// extrema-only fingerprint), AtomStore counter semantics (Clear resets
// stats; eviction preserves the repopulate-vs-fresh distinction), the
// budgeted tiered LRU (budget invariant, spill/reload round trips,
// spill-file loss degrading to a miss), the binary atom codec, and the
// differential contract: a bounded store/session produces bit-identical
// Recommend/Refine/PlanDeployment results to an unbounded one — budgets
// bound memory, never answers.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "backend/inmemory_backend.h"
#include "cophy/atom_codec.h"
#include "core/session.h"
#include "server/atom_store.h"
#include "server/server.h"
#include "util/cache_budget.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

// --- SchemaFingerprint regression: histogram / MCV contents ---

// Minimal stats-only backend: SchemaFingerprint reads catalog(),
// all_stats() and cost_params() only, so the cost entry points can be
// stubs that are never called.
class StatsStubBackend final : public DbmsBackend {
 public:
  StatsStubBackend(Catalog catalog, std::vector<TableStats> stats)
      : catalog_(std::move(catalog)), stats_(std::move(stats)) {}

  std::string name() const override { return "stats-stub"; }
  const CostParams& cost_params() const override { return params_; }
  const Catalog& catalog() const override { return catalog_; }
  const std::vector<TableStats>& all_stats() const override { return stats_; }
  Status RefreshStatistics(TableId, const AnalyzeOptions&) override {
    return Status::Internal("stats stub");
  }
  PhysicalDesign CurrentDesign() const override { return {}; }
  Result<PlanResult> OptimizeQuery(const BoundQuery&, const PhysicalDesign&,
                                   const PlannerKnobs&) override {
    return Status::Internal("stats stub");
  }
  uint64_t num_optimizer_calls() const override { return 0; }
  void ResetCallCount() override {}

 private:
  Catalog catalog_;
  std::vector<TableStats> stats_;
  CostParams params_;
};

// One table, one int column, fully parameterized statistics. Every
// stub built here agrees on catalog shape, row count, NDV, null_frac,
// correlation, histogram RESOLUTION and EXTREMA — the summary the
// pre-fix fingerprint stopped at.
StatsStubBackend MakeStatsStub(std::vector<int64_t> histogram_bounds,
                               std::vector<std::pair<int64_t, double>> mcv) {
  Catalog catalog;
  TableDef table("t", {ColumnDef{"c", DataType::kInt64, 0}});
  EXPECT_TRUE(catalog.AddTable(std::move(table)).ok());

  ColumnStats col;
  col.n_distinct = 100.0;
  col.null_frac = 0.0;
  col.correlation = 0.25;
  col.min = Value(int64_t{0});
  col.max = Value(int64_t{100});
  for (int64_t b : histogram_bounds) col.histogram.push_back(Value(b));
  for (const auto& [value, freq] : mcv) {
    col.mcv.push_back(McvEntry{Value(value), freq});
  }

  TableStats stats;
  stats.row_count = 1000.0;
  stats.columns.push_back(std::move(col));
  return StatsStubBackend(std::move(catalog), {std::move(stats)});
}

// Two substrates equal in every summary statistic — same histogram
// size, same min/max (the extrema are the first/last bounds) — but
// with one interior bound moved. Selectivity estimation walks the
// bounds, so these cost queries differently and must never share atom
// rows. The pre-fix fingerprint (size + extrema only) collides here.
TEST(CacheFingerprintTest, HistogramInteriorChangesFingerprint) {
  StatsStubBackend a = MakeStatsStub({0, 10, 50, 100}, {});
  StatsStubBackend b = MakeStatsStub({0, 10, 90, 100}, {});
  EXPECT_NE(SchemaFingerprint(a), SchemaFingerprint(b));

  // Determinism sanity: identical substrates fingerprint identically.
  StatsStubBackend a2 = MakeStatsStub({0, 10, 50, 100}, {});
  EXPECT_EQ(SchemaFingerprint(a), SchemaFingerprint(a2));
}

// Same shape for the MCV list: equal length, different member value or
// different frequency — both must change the fingerprint (frequency
// feeds equality selectivity directly).
TEST(CacheFingerprintTest, McvContentsChangeFingerprint) {
  StatsStubBackend base = MakeStatsStub({0, 100}, {{5, 0.2}, {9, 0.1}});
  StatsStubBackend other_value =
      MakeStatsStub({0, 100}, {{7, 0.2}, {9, 0.1}});
  StatsStubBackend other_freq =
      MakeStatsStub({0, 100}, {{5, 0.3}, {9, 0.1}});
  EXPECT_NE(SchemaFingerprint(base), SchemaFingerprint(other_value));
  EXPECT_NE(SchemaFingerprint(base), SchemaFingerprint(other_freq));
  EXPECT_NE(SchemaFingerprint(other_value), SchemaFingerprint(other_freq));
}

// --- Binary atom codec ---

CoPhyAtomRow MakeRow(double base_cost, int num_atoms, int id_seed) {
  CoPhyAtomRow row;
  row.base_cost = base_cost;
  for (int a = 0; a < num_atoms; ++a) {
    CoPhyAtom atom;
    atom.cost = base_cost + a * 1.5;
    for (int i = 0; i < a % 4; ++i) atom.used.push_back(id_seed + a + i);
    row.atoms.push_back(std::move(atom));
  }
  return row;
}

void ExpectBitIdenticalRows(const CoPhyAtomRow& a, const CoPhyAtomRow& b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a.base_cost),
            std::bit_cast<uint64_t>(b.base_cost));
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  for (size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.atoms[i].cost),
              std::bit_cast<uint64_t>(b.atoms[i].cost));
    EXPECT_EQ(a.atoms[i].used, b.atoms[i].used);
  }
}

TEST(AtomCodecTest, RoundTripIncludingNonFiniteCosts) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  CoPhyAtomRow row;
  row.base_cost = 1234.5;
  row.atoms.push_back(CoPhyAtom{3.25, {0, 2, 7}});
  row.atoms.push_back(CoPhyAtom{kInf, {1}});  // infeasible plan option
  row.atoms.push_back(CoPhyAtom{-kInf, {}});
  row.atoms.push_back(CoPhyAtom{std::nan(""), {4, 5}});

  Result<CoPhyAtomRow> back = DecodeAtomRow(EncodeAtomRow(row));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdenticalRows(row, back.value());

  // Degenerate rows round-trip too.
  CoPhyAtomRow empty;
  Result<CoPhyAtomRow> empty_back = DecodeAtomRow(EncodeAtomRow(empty));
  ASSERT_TRUE(empty_back.ok());
  ExpectBitIdenticalRows(empty, empty_back.value());
}

TEST(AtomCodecTest, RejectsCorruptInput) {
  std::string good = EncodeAtomRow(MakeRow(10.0, 5, 3));
  ASSERT_TRUE(DecodeAtomRow(good).ok());

  EXPECT_EQ(DecodeAtomRow("").status().code(), StatusCode::kInvalidArgument);

  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] + 1);
  EXPECT_EQ(DecodeAtomRow(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(bad_version[4] + 1);
  EXPECT_EQ(DecodeAtomRow(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  // Every truncation point must fail cleanly, never read out of bounds.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(DecodeAtomRow(std::string_view(good).substr(0, len)).ok())
        << "truncated at " << len;
  }

  EXPECT_EQ(DecodeAtomRow(good + "x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AtomCodecTest, AtomRowBytesGrowsWithContents) {
  size_t empty = AtomRowBytes(CoPhyAtomRow{});
  EXPECT_GE(empty, sizeof(CoPhyAtomRow));
  EXPECT_GT(AtomRowBytes(MakeRow(1.0, 4, 0)), empty);
  EXPECT_GT(AtomRowBytes(MakeRow(1.0, 8, 0)), AtomRowBytes(MakeRow(1.0, 4, 0)));
}

// --- AtomStore counter semantics ---

std::shared_ptr<const CoPhyAtomRow> SharedRow(double base_cost, int num_atoms,
                                              int id_seed = 0) {
  return std::make_shared<const CoPhyAtomRow>(
      MakeRow(base_cost, num_atoms, id_seed));
}

// Clear() must reset the counters with the entries: a hit_rate() mixing
// pre- and post-clear epochs misreports (the old bug left stats_ stale).
TEST(AtomStoreTest, ClearResetsStats) {
  AtomStore store;
  store.Publish(1, "q1", 10, SharedRow(5.0, 3));
  EXPECT_NE(store.Lookup(1, "q1", 10), nullptr);
  EXPECT_EQ(store.Lookup(1, "q2", 10), nullptr);

  AtomStoreStats before = store.stats();
  EXPECT_EQ(before.publishes, 1u);
  EXPECT_EQ(before.lookups, 2u);
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.misses, 1u);
  EXPECT_GT(store.hot_bytes(), 0u);

  store.Clear();
  AtomStoreStats after = store.stats();
  EXPECT_EQ(after.lookups, 0u);
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.publishes, 0u);
  EXPECT_EQ(after.repopulates, 0u);
  EXPECT_EQ(after.hit_rate(), 0.0);
  EXPECT_EQ(store.entries(), 0u);
  EXPECT_EQ(store.hot_bytes(), 0u);
  EXPECT_EQ(store.peak_hot_bytes(), 0u);

  // The post-clear epoch counts from zero.
  EXPECT_NE(store.Publish(1, "q1", 10, SharedRow(5.0, 3)), nullptr);
  AtomStoreStats fresh = store.stats();
  EXPECT_EQ(fresh.publishes, 1u);
  EXPECT_EQ(fresh.repopulates, 0u);  // Clear forgot seen_queries_
}

// Eviction without a cold tier drops the row but must NOT forget that
// the (schema, query) was published: the rebuild is a repopulate (the
// populate was paid twice), not a fresh publish. Only Clear() resets
// that memory.
TEST(AtomStoreTest, EvictionPreservesRepopulateDistinction) {
  AtomStoreOptions options;
  options.budget_bytes = 1;  // every publish immediately evicts
  AtomStore store(options);

  std::shared_ptr<const CoPhyAtomRow> held =
      store.Publish(7, "q1", 10, SharedRow(5.0, 3));
  ASSERT_NE(held, nullptr);  // the publisher keeps its row regardless
  AtomStoreStats s = store.stats();
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.repopulates, 0u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_EQ(s.spills, 0u);  // no spill dir
  EXPECT_EQ(store.hot_bytes(), 0u);

  // The evicted entry is gone: miss, then the rebuild counts as a
  // repopulate even though the entry no longer exists.
  EXPECT_EQ(store.Lookup(7, "q1", 10), nullptr);
  store.Publish(7, "q1", 10, SharedRow(5.0, 3));
  EXPECT_EQ(store.stats().repopulates, 1u);

  // Same query under a NEW universe is also a repopulate (pre-existing
  // semantics, must survive the budgeted rewrite).
  store.Publish(7, "q1", 11, SharedRow(5.0, 3));
  EXPECT_EQ(store.stats().repopulates, 2u);

  // Clear() resets the distinction: the next publish is fresh again.
  store.Clear();
  store.Publish(7, "q1", 10, SharedRow(5.0, 3));
  EXPECT_EQ(store.stats().publishes, 1u);
  EXPECT_EQ(store.stats().repopulates, 0u);
}

// --- The tiered LRU with a cold tier ---

class SpillDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("atom_spill_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SpillDirTest, SpillAndReloadRoundTrip) {
  std::shared_ptr<const CoPhyAtomRow> original = SharedRow(42.0, 6, 100);

  AtomStoreOptions options;
  options.budget_bytes = AtomRowBytes(*original) + 8;  // fits exactly one row
  options.spill_dir = dir_.string();
  AtomStore store(options);

  store.Publish(1, "q1", 10, original);
  EXPECT_EQ(store.hot_entries(), 1u);

  // A second row pushes q1 to the cold tier.
  store.Publish(1, "q2", 10, SharedRow(7.0, 6, 200));
  AtomStoreStats s = store.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_GE(s.spills, 1u);
  EXPECT_LE(store.hot_bytes(), options.budget_bytes);
  EXPECT_LE(store.peak_hot_bytes(), options.budget_bytes);
  EXPECT_EQ(store.entries(), 2u);  // both alive, one hot + one cold

  // Transparent reload: the lookup is a hit, served by decoding the
  // spill file, and the row is bit-identical to what was published.
  std::shared_ptr<const CoPhyAtomRow> back = store.Lookup(1, "q1", 10);
  ASSERT_NE(back, nullptr);
  ExpectBitIdenticalRows(*original, *back);
  s = store.stats();
  EXPECT_GE(s.reloads, 1u);
  EXPECT_EQ(s.reload_failures, 0u);
  EXPECT_GE(s.hits, 1u);
  EXPECT_LE(store.hot_bytes(), options.budget_bytes);

  // Clear() removes the spill files along with the entries.
  store.Clear();
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

// A lost/corrupt spill file degrades to a miss + repopulate — never an
// error, never a wrong row.
TEST_F(SpillDirTest, LostSpillFileDegradesToMiss) {
  AtomStoreOptions options;
  options.budget_bytes = 1;  // every row goes cold immediately
  options.spill_dir = dir_.string();
  AtomStore store(options);

  store.Publish(1, "q1", 10, SharedRow(5.0, 4));
  ASSERT_GE(store.stats().spills, 1u);

  // Simulate crash/cleanup losing the cold tier.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::filesystem::remove(entry.path());
  }

  EXPECT_EQ(store.Lookup(1, "q1", 10), nullptr);
  AtomStoreStats s = store.stats();
  EXPECT_EQ(s.reload_failures, 1u);
  EXPECT_EQ(s.reloads, 0u);
  EXPECT_GE(s.misses, 1u);

  // The session rebuilds: counted as a repopulate, then served again.
  store.Publish(1, "q1", 10, SharedRow(5.0, 4));
  EXPECT_EQ(store.stats().repopulates, 1u);
}

// --- CacheBudget ---

TEST(CacheBudgetTest, FromTotalSplitsAndNeverUnboundsATier) {
  EXPECT_TRUE(CacheBudget{}.unbounded());
  EXPECT_TRUE(CacheBudget::FromTotal(0).unbounded());

  CacheBudget b = CacheBudget::FromTotal(1000);
  EXPECT_FALSE(b.unbounded());
  EXPECT_EQ(b.atom_store_bytes, 700u);
  EXPECT_EQ(b.doi_rows_bytes, 200u);
  EXPECT_EQ(b.solver_cache_bytes, 100u);

  // A tiny total still bounds every tier (0 would mean "unbounded").
  CacheBudget tiny = CacheBudget::FromTotal(5);
  EXPECT_GE(tiny.atom_store_bytes, 1u);
  EXPECT_GE(tiny.doi_rows_bytes, 1u);
  EXPECT_GE(tiny.solver_cache_bytes, 1u);
}

// --- Differential: bounded == unbounded, bit for bit ---

Database SmallDb(int rows = 1200, uint64_t seed = 31) {
  SdssConfig cfg;
  cfg.photoobj_rows = rows;
  cfg.seed = seed;
  return BuildSdssDatabase(cfg);
}

Workload SmallWorkload(const Database& db, int n = 6, uint64_t seed = 5) {
  return GenerateWorkload(db, TemplateMix::OfflineDefault(), n, seed);
}

void ExpectSameRecommendation(const IndexRecommendation& a,
                              const IndexRecommendation& b) {
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_EQ(a.indexes[i].Key(), b.indexes[i].Key());
  }
  EXPECT_EQ(a.total_size_pages, b.total_size_pages);
  EXPECT_EQ(a.base_cost, b.base_cost);
  EXPECT_EQ(a.recommended_cost, b.recommended_cost);
  EXPECT_EQ(a.per_query_cost, b.per_query_cost);
}

void ExpectSamePlan(const DeploymentPlan& a, const DeploymentPlan& b) {
  ASSERT_EQ(a.indexes.size(), b.indexes.size());
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    EXPECT_EQ(a.indexes[i].Key(), b.indexes[i].Key());
  }
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.clusters, b.clusters);
  ASSERT_EQ(a.schedule.steps.size(), b.schedule.steps.size());
  for (size_t i = 0; i < a.schedule.steps.size(); ++i) {
    EXPECT_EQ(a.schedule.steps[i].index.Key(), b.schedule.steps[i].index.Key());
    EXPECT_EQ(a.schedule.steps[i].cost_after, b.schedule.steps[i].cost_after);
  }
  EXPECT_EQ(a.schedule.base_cost, b.schedule.base_cost);
  EXPECT_EQ(a.schedule.final_cost, b.schedule.final_cost);
  EXPECT_EQ(a.schedule.total_pages, b.schedule.total_pages);
}

void ExpectSameResponse(const SessionResponse& a, const SessionResponse& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.status.code(), b.status.code());
  ASSERT_EQ(a.recommendation.has_value(), b.recommendation.has_value());
  if (a.recommendation.has_value()) {
    ExpectSameRecommendation(*a.recommendation, *b.recommendation);
  }
  ASSERT_EQ(a.plan.has_value(), b.plan.has_value());
  if (a.plan.has_value()) ExpectSamePlan(*a.plan, *b.plan);
}

// Runs the same multi-schema, two-round session sequence against one
// server and returns every response in order.
std::vector<SessionResponse> RunServerSequence(
    TuningServer& server, const std::vector<Workload>& workloads) {
  std::vector<SessionResponse> out;
  for (int round = 0; round < 2; ++round) {
    for (size_t s = 0; s < workloads.size(); ++s) {
      std::string id =
          "r" + std::to_string(round) + "-s" + std::to_string(s);
      std::string schema = "schema" + std::to_string(s);
      EXPECT_TRUE(server.OpenSession(id, schema).ok());
      EXPECT_TRUE(server
                      .WithSession(id,
                                   [&](DesignSession& session) {
                                     session.SetWorkload(workloads[s]);
                                   })
                      .ok());
      ConstraintDelta tighten;
      tighten.storage_budget_pages = 500.0;
      std::vector<SessionResponse> r = server.RunBatch({
          {id, SessionOp::kRecommend, {}},
          {id, SessionOp::kPlanDeployment, {}},
          {id, SessionOp::kRefine, tighten},
      });
      for (SessionResponse& resp : r) {
        EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
        out.push_back(std::move(resp));
      }
      EXPECT_TRUE(server.CloseSession(id).ok());
    }
  }
  return out;
}

// The tentpole contract: a server whose atom store is squeezed to a
// single byte — every published row is immediately evicted to disk and
// every reuse goes through the spill codec — answers every request
// bit-identically to an unbounded server. Budgets trade work, never
// results.
TEST_F(SpillDirTest, BoundedServerBitIdenticalToUnbounded) {
  const int kSchemas = 3;
  std::vector<Database> dbs;
  std::vector<std::unique_ptr<InMemoryBackend>> backends;
  std::vector<Workload> workloads;
  for (int s = 0; s < kSchemas; ++s) {
    dbs.push_back(SmallDb(900 + 100 * s, 31 + s));
  }
  for (int s = 0; s < kSchemas; ++s) {
    backends.push_back(std::make_unique<InMemoryBackend>(dbs[s]));
    workloads.push_back(SmallWorkload(dbs[s], 5, 5 + s));
  }

  TuningServer unbounded;
  TuningServerOptions bounded_options;
  bounded_options.cache_budget.atom_store_bytes = 1;
  bounded_options.spill_dir = dir_.string();
  TuningServer bounded(bounded_options);
  for (int s = 0; s < kSchemas; ++s) {
    std::string schema = "schema" + std::to_string(s);
    ASSERT_TRUE(unbounded.RegisterSchema(schema, *backends[s]).ok());
    ASSERT_TRUE(bounded.RegisterSchema(schema, *backends[s]).ok());
  }

  std::vector<SessionResponse> a = RunServerSequence(unbounded, workloads);
  std::vector<SessionResponse> b = RunServerSequence(bounded, workloads);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectSameResponse(a[i], b[i]);

  // The bounded store actually exercised every tier transition.
  TuningServerStats stats = bounded.stats();
  EXPECT_GE(stats.atoms.evictions, 1u);
  EXPECT_GE(stats.atoms.spills, 1u);
  EXPECT_GE(stats.atoms.reloads, 1u);  // round 2 reuses round 1's spills
  EXPECT_LE(stats.atom_hot_bytes, 1u);
  EXPECT_LE(stats.atom_peak_hot_bytes, 1u);

  // The unbounded store never ticked a tiering counter.
  TuningServerStats ustats = unbounded.stats();
  EXPECT_EQ(ustats.atoms.evictions, 0u);
  EXPECT_EQ(ustats.atoms.spills, 0u);
  EXPECT_EQ(ustats.atoms.reloads, 0u);
  EXPECT_GT(ustats.atom_hot_bytes, 0u);
}

// DoI contribution-row budget: a session squeezed to one byte of DoI
// cache evicts every row after each plan build and recomputes them on
// the next — plans stay identical to the unbounded session.
TEST(CacheDifferentialTest, DoiRowBudgetPreservesPlans) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db);

  Designer d1(backend), d2(backend);
  DesignSession unbounded(d1), bounded(d2);
  CacheBudget budget;
  budget.doi_rows_bytes = 1;
  bounded.SetCacheBudget(budget);
  unbounded.SetWorkload(w);
  bounded.SetWorkload(w);

  ASSERT_TRUE(unbounded.Recommend().ok());
  ASSERT_TRUE(bounded.Recommend().ok());
  Result<DeploymentPlan> p1 = unbounded.PlanDeployment();
  Result<DeploymentPlan> p2 = bounded.PlanDeployment();
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  ExpectSamePlan(p1.value(), p2.value());
  EXPECT_GT(bounded.doi_rows_evicted(), 0u);
  EXPECT_EQ(unbounded.doi_rows_evicted(), 0u);

  // A refine forces a replan; the bounded session recomputes its
  // evicted rows from cached atoms and still matches.
  ConstraintDelta tighten;
  tighten.storage_budget_pages = 400.0;
  Result<IndexRecommendation> r1 = unbounded.Refine(tighten);
  Result<IndexRecommendation> r2 = bounded.Refine(tighten);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ExpectSameRecommendation(r1.value(), r2.value());

  Result<DeploymentPlan> q1 = unbounded.PlanDeployment();
  Result<DeploymentPlan> q2 = bounded.PlanDeployment();
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ExpectSamePlan(q1.value(), q2.value());
}

// Solver-cache budget: trimming frontiers/entries after every solve
// costs re-solve work on the next Refine, never a different answer.
TEST(CacheDifferentialTest, SolverCacheBudgetPreservesRecommendations) {
  Database db = SmallDb();
  InMemoryBackend backend(db);
  Workload w = SmallWorkload(db);

  Designer d1(backend), d2(backend);
  DesignSession unbounded(d1), bounded(d2);
  CacheBudget budget;
  budget.solver_cache_bytes = 1;
  bounded.SetCacheBudget(budget);
  unbounded.SetWorkload(w);
  bounded.SetWorkload(w);

  Result<IndexRecommendation> r1 = unbounded.Recommend();
  Result<IndexRecommendation> r2 = bounded.Recommend();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ExpectSameRecommendation(r1.value(), r2.value());
  EXPECT_GE(bounded.solver_cache().trims, 1u);
  EXPECT_EQ(unbounded.solver_cache().trims, 0u);

  // Loosen (forces a re-solve against the trimmed cache), then tighten.
  for (double pages : {5000.0, 300.0}) {
    ConstraintDelta delta;
    delta.storage_budget_pages = pages;
    r1 = unbounded.Refine(delta);
    r2 = bounded.Refine(delta);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ExpectSameRecommendation(r1.value(), r2.value());
  }
  EXPECT_LE(bounded.solver_cache().ApproxBytes(),
            sizeof(CoPhySolverCache) + bounded.solver_cache().entries.size() *
                                           sizeof(CoPhySolverCache::Entry) +
                sizeof(CoPhySolverCache::Entry));
}

}  // namespace
}  // namespace dbdesign
