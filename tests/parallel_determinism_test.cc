// The parallel costing engine's contract: results are bit-identical to
// serial execution at any thread count, for every batched entry point —
// WhatIfOptimizer::TryCostWorkload (backend CostBatch),
// InumCostModel::WorkloadCost (populate + reuse), and
// Designer::EvaluateDesigns (cost matrix) — including the InumStats
// counters. Plus unit coverage for util/thread_pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "backend/inmemory_backend.h"
#include "core/designer.h"
#include "core/session.h"
#include "interaction/doi.h"
#include "interaction/schedule.h"
#include "inum/inum.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "whatif/whatif.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

Database MakeDb() {
  SetLogLevel(LogLevel::kError);
  SdssConfig cfg;
  cfg.photoobj_rows = 4000;
  cfg.seed = 42;
  return BuildSdssDatabase(cfg);
}

CostParams WithThreads(int n) {
  CostParams params;
  params.num_threads = n;
  return params;
}

/// Workload-derived candidate designs (same recipe as bench_inum).
std::vector<PhysicalDesign> MakeDesigns(const Workload& workload, int count) {
  Rng rng(11);
  std::vector<IndexDef> pool;
  for (const BoundQuery& q : workload.queries) {
    for (int s = 0; s < q.num_slots(); ++s) {
      for (ColumnId c : q.PredicateColumns(s)) {
        IndexDef idx{q.tables[s], {c}, false};
        bool dup = false;
        for (const IndexDef& e : pool) dup |= e == idx;
        if (!dup) pool.push_back(idx);
      }
    }
  }
  std::vector<PhysicalDesign> designs;
  for (int d = 0; d < count; ++d) {
    PhysicalDesign design;
    for (const IndexDef& idx : pool) {
      if (rng.Bernoulli(0.35)) design.AddIndex(idx);
    }
    designs.push_back(std::move(design));
  }
  return designs;
}

// --- ThreadPool unit tests ---

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolOfOneRunsInlineOnCaller) {
  ThreadPool pool(1);
  std::set<std::thread::id> ids;
  pool.ParallelFor(16, [&](size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, ParallelismCapOfOneRunsInline) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  pool.ParallelFor(16, /*parallelism=*/1,
                   [&](size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i % 7 == 3) {
                           throw std::runtime_error("task failure");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  // Every index throws; the deterministic survivor is index 0's.
  try {
    pool.ParallelFor(32, [&](size_t i) {
      throw std::runtime_error("idx" + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx0");
  }
}

TEST(ThreadPoolTest, NestedParallelForFlattensInsteadOfDeadlocking) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    ThreadPool::Shared().ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, GrowablePoolDoesNotOversubscribeSingleCore) {
  // Regression for the BENCH_schedule doi_matrix_multicore 0.85x
  // slowdown: a growable pool asked for 8-way parallelism on 1-core
  // hardware must run inline rather than spawn timesharing workers.
  ThreadPool pool(1, /*growable=*/true);
  Mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> total{0};
  pool.ParallelFor(64, /*parallelism=*/8, [&](size_t) {
    MutexLock lock(mu);
    ids.insert(std::this_thread::get_id());
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 64);
  if (ThreadPool::HardwareThreads() < 2) {
    // Pure-oversubscription case: no workers spawned, caller ran all.
    EXPECT_EQ(pool.num_threads(), 1);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
  } else {
    // Real cores available: the pool must still grow on demand.
    EXPECT_GT(pool.num_threads(), 1);
  }
}

TEST(ThreadPoolTest, ExceptionLeavesPoolReusable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

// --- Bit-identical parallel costing ---

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  Database db_ = MakeDb();
  Workload workload_ =
      GenerateWorkload(db_, TemplateMix::OfflineDefault(), 16, 7);
  std::vector<PhysicalDesign> designs_ = MakeDesigns(workload_, 6);
};

TEST_F(ParallelDeterminismTest, TryCostWorkloadBitIdentical) {
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  WhatIfOptimizer serial(serial_backend);
  WhatIfOptimizer parallel(parallel_backend);

  for (const PhysicalDesign& design : designs_) {
    Result<std::vector<double>> a = serial.TryCostWorkload(workload_, design);
    Result<std::vector<double>> b = parallel.TryCostWorkload(workload_, design);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.value(), b.value());
  }
  EXPECT_EQ(serial_backend.num_optimizer_calls(),
            parallel_backend.num_optimizer_calls());
}

TEST_F(ParallelDeterminismTest, InumWorkloadCostBitIdentical) {
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  InumCostModel serial(serial_backend);
  InumCostModel parallel(parallel_backend);

  for (const PhysicalDesign& design : designs_) {
    double a = serial.WorkloadCost(workload_, design);
    double b = parallel.WorkloadCost(workload_, design);
    EXPECT_EQ(a, b);
  }

  EXPECT_EQ(serial.stats().populate_optimizations,
            parallel.stats().populate_optimizations);
  EXPECT_EQ(serial.stats().reuse_calls, parallel.stats().reuse_calls);
  EXPECT_EQ(serial.stats().fallback_calls, parallel.stats().fallback_calls);
  EXPECT_EQ(serial.stats().queries_cached, parallel.stats().queries_cached);
  EXPECT_EQ(serial.stats().plans_cached, parallel.stats().plans_cached);
}

TEST_F(ParallelDeterminismTest, PrepareQueriesMatchesSerialPrepare) {
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  InumCostModel serial(serial_backend);
  InumCostModel parallel(parallel_backend);

  for (const BoundQuery& q : workload_.queries) serial.Prepare(q);
  parallel.PrepareWorkload(workload_);

  EXPECT_EQ(serial.stats().populate_optimizations,
            parallel.stats().populate_optimizations);
  EXPECT_EQ(serial.stats().queries_cached, parallel.stats().queries_cached);
  EXPECT_EQ(serial.stats().plans_cached, parallel.stats().plans_cached);
  // Identical caches answer identically.
  for (const PhysicalDesign& design : designs_) {
    for (const BoundQuery& q : workload_.queries) {
      EXPECT_EQ(serial.Cost(q, design), parallel.Cost(q, design));
    }
  }
}

TEST_F(ParallelDeterminismTest, EvaluateDesignsBitIdentical) {
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  Designer serial(serial_backend);
  Designer parallel(parallel_backend);

  std::vector<BenefitReport> a = serial.EvaluateDesigns(workload_, designs_);
  std::vector<BenefitReport> b = parallel.EvaluateDesigns(workload_, designs_);

  ASSERT_EQ(a.size(), b.size());
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a[d].base_costs, b[d].base_costs);
    EXPECT_EQ(a[d].new_costs, b[d].new_costs);
    EXPECT_EQ(a[d].base_total, b[d].base_total);
    EXPECT_EQ(a[d].new_total, b[d].new_total);
  }

  EXPECT_EQ(serial.inum().stats().populate_optimizations,
            parallel.inum().stats().populate_optimizations);
  EXPECT_EQ(serial.inum().stats().reuse_calls,
            parallel.inum().stats().reuse_calls);
  EXPECT_EQ(serial.inum().stats().fallback_calls,
            parallel.inum().stats().fallback_calls);
}

TEST_F(ParallelDeterminismTest, DoiMatrixBitIdentical) {
  // A small single-column pool keeps the pair count honest while still
  // exercising cross-pair structure.
  std::vector<IndexDef> pool;
  for (const BoundQuery& q : workload_.queries) {
    for (int s = 0; s < q.num_slots() && pool.size() < 6; ++s) {
      for (ColumnId c : q.PredicateColumns(s)) {
        IndexDef idx{q.tables[s], {c}, false};
        bool dup = false;
        for (const IndexDef& e : pool) dup |= e == idx;
        if (!dup && pool.size() < 6) pool.push_back(idx);
      }
    }
  }
  ASSERT_GE(pool.size(), 3u);

  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  InumCostModel serial(serial_backend);
  InumCostModel parallel(parallel_backend);
  InteractionAnalyzer sa(serial);
  InteractionAnalyzer pa(parallel);

  DoiMatrix a = sa.AnalyzeMatrix(workload_, pool);
  DoiMatrix b = pa.AnalyzeMatrix(workload_, pool);
  // Bit-identical, not approximately equal — down to the per-query
  // contribution rows and the reuse counters.
  EXPECT_EQ(a.doi, b.doi);
  EXPECT_EQ(a.contributions, b.contributions);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_EQ(a.Clusters(), b.Clusters());
  EXPECT_EQ(serial.stats().populate_optimizations,
            parallel.stats().populate_optimizations);
  EXPECT_EQ(serial.stats().reuse_calls, parallel.stats().reuse_calls);
  EXPECT_EQ(serial.stats().fallback_calls, parallel.stats().fallback_calls);

  // The schedules over the same pool agree field by field.
  MaterializationScheduler ss(serial);
  MaterializationScheduler ps(parallel);
  MaterializationSchedule sg = ss.Greedy(workload_, pool);
  MaterializationSchedule pg = ps.Greedy(workload_, pool);
  ASSERT_EQ(sg.steps.size(), pg.steps.size());
  for (size_t k = 0; k < sg.steps.size(); ++k) {
    EXPECT_TRUE(sg.steps[k].index == pg.steps[k].index);
    EXPECT_EQ(sg.steps[k].marginal_benefit, pg.steps[k].marginal_benefit);
    EXPECT_EQ(sg.steps[k].cost_after, pg.steps[k].cost_after);
    EXPECT_EQ(sg.steps[k].cumulative_pages, pg.steps[k].cumulative_pages);
  }
  EXPECT_EQ(sg.base_cost, pg.base_cost);
  EXPECT_EQ(sg.final_cost, pg.final_cost);
}

TEST_F(ParallelDeterminismTest, PlanDeploymentBitIdentical) {
  // The whole deployment stage — recommendation, DoI matrix, clusters,
  // schedule — serial vs 8 threads.
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  Designer serial_designer(serial_backend);
  Designer parallel_designer(parallel_backend);
  DesignSession serial(serial_designer);
  DesignSession parallel(parallel_designer);
  serial.SetWorkload(workload_);
  parallel.SetWorkload(workload_);

  auto ra = serial.Recommend();
  auto rb = parallel.Recommend();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra.value().indexes, rb.value().indexes);

  auto pa = serial.PlanDeployment();
  auto pb = parallel.PlanDeployment();
  ASSERT_TRUE(pa.ok()) << pa.status().ToString();
  ASSERT_TRUE(pb.ok()) << pb.status().ToString();
  EXPECT_EQ(pa.value().edges, pb.value().edges);
  EXPECT_EQ(pa.value().clusters, pb.value().clusters);
  ASSERT_EQ(pa.value().schedule.steps.size(), pb.value().schedule.steps.size());
  for (size_t k = 0; k < pa.value().schedule.steps.size(); ++k) {
    const ScheduleStep& x = pa.value().schedule.steps[k];
    const ScheduleStep& y = pb.value().schedule.steps[k];
    EXPECT_TRUE(x.index == y.index);
    EXPECT_EQ(x.cost_after, y.cost_after);
    EXPECT_EQ(x.cumulative_pages, y.cumulative_pages);
    EXPECT_EQ(x.cluster, y.cluster);
  }
  EXPECT_EQ(pa.value().schedule.final_cost, pb.value().schedule.final_cost);
}

TEST_F(ParallelDeterminismTest, CoPhyRecommendationBitIdentical) {
  CoPhyOptions opts;
  opts.storage_budget_pages = 500.0;
  InMemoryBackend serial_backend(db_, WithThreads(1));
  InMemoryBackend parallel_backend(db_, WithThreads(8));
  CoPhyAdvisor serial(serial_backend, opts);
  CoPhyAdvisor parallel(parallel_backend, opts);

  IndexRecommendation a = serial.Recommend(workload_);
  IndexRecommendation b = parallel.Recommend(workload_);
  EXPECT_EQ(a.indexes, b.indexes);
  EXPECT_EQ(a.recommended_cost, b.recommended_cost);
  EXPECT_EQ(a.base_cost, b.base_cost);
  EXPECT_EQ(a.num_atoms, b.num_atoms);
  EXPECT_EQ(a.per_query_cost, b.per_query_cost);
}

}  // namespace
}  // namespace dbdesign
