// Tests for the SQL front end: lexer, parser, binder, SQL round-trips.

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT a, b FROM t WHERE a >= 1.5 AND b <> 'x'");
  ASSERT_TRUE(toks.ok());
  const auto& v = toks.value();
  EXPECT_EQ(v[0].type, TokenType::kSelect);
  EXPECT_EQ(v[1].type, TokenType::kIdentifier);
  EXPECT_EQ(v[1].text, "a");
  EXPECT_EQ(v[2].type, TokenType::kComma);
  EXPECT_EQ(v.back().type, TokenType::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto toks = Tokenize("42 3.14 1e3 'hello world'");
  ASSERT_TRUE(toks.ok());
  const auto& v = toks.value();
  EXPECT_EQ(v[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(v[0].int_value, 42);
  EXPECT_EQ(v[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(v[1].double_value, 3.14);
  EXPECT_EQ(v[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(v[2].double_value, 1000.0);
  EXPECT_EQ(v[3].type, TokenType::kStringLiteral);
  EXPECT_EQ(v[3].text, "hello world");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto toks = Tokenize("< <= > >= = <> !=");
  ASSERT_TRUE(toks.ok());
  const auto& v = toks.value();
  EXPECT_EQ(v[0].type, TokenType::kLt);
  EXPECT_EQ(v[1].type, TokenType::kLe);
  EXPECT_EQ(v[2].type, TokenType::kGt);
  EXPECT_EQ(v[3].type, TokenType::kGe);
  EXPECT_EQ(v[4].type, TokenType::kEq);
  EXPECT_EQ(v[5].type, TokenType::kNe);
  EXPECT_EQ(v[6].type, TokenType::kNe);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = Tokenize("select FROM Where");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].type, TokenType::kSelect);
  EXPECT_EQ(toks.value()[1].type, TokenType::kFrom);
  EXPECT_EQ(toks.value()[2].type, TokenType::kWhere);
}

TEST(ParserTest, SimpleSelect) {
  auto ast = ParseQuery("SELECT a, b FROM t WHERE a = 1 AND b < 2.5");
  ASSERT_TRUE(ast.ok());
  const AstQuery& q = ast.value();
  EXPECT_EQ(q.select_items.size(), 2u);
  EXPECT_EQ(q.tables.size(), 1u);
  EXPECT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, AstPredicate::Kind::kComparison);
  EXPECT_EQ(q.where[0].op, CompareOp::kEq);
}

TEST(ParserTest, SelectStar) {
  auto ast = ParseQuery("SELECT * FROM t");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast.value().select_star);
}

TEST(ParserTest, JoinSyntax) {
  auto ast = ParseQuery(
      "SELECT p.a FROM photo p JOIN spec s ON p.a = s.b WHERE s.c > 3");
  ASSERT_TRUE(ast.ok());
  const AstQuery& q = ast.value();
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[1].alias, "s");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].kind, AstPredicate::Kind::kColumnEq);
}

TEST(ParserTest, CommaJoinAndBetween) {
  auto ast = ParseQuery(
      "SELECT a FROM t1, t2 WHERE t1.x = t2.y AND t1.a BETWEEN 1 AND 10");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast.value().tables.size(), 2u);
  EXPECT_EQ(ast.value().where[1].kind, AstPredicate::Kind::kBetween);
}

TEST(ParserTest, GroupOrderLimit) {
  auto ast = ParseQuery(
      "SELECT run, COUNT(*) FROM t GROUP BY run ORDER BY run DESC LIMIT 10");
  ASSERT_TRUE(ast.ok());
  const AstQuery& q = ast.value();
  EXPECT_EQ(q.group_by.size(), 1u);
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_EQ(q.limit, 10);
  ASSERT_EQ(q.select_items.size(), 2u);
  EXPECT_TRUE(q.select_items[1].is_aggregate);
  EXPECT_TRUE(q.select_items[1].agg_star);
}

TEST(ParserTest, AggregateFunctions) {
  auto ast = ParseQuery("SELECT SUM(a), AVG(b), MIN(c), MAX(d) FROM t");
  ASSERT_TRUE(ast.ok());
  const AstQuery& q = ast.value();
  ASSERT_EQ(q.select_items.size(), 4u);
  EXPECT_EQ(q.select_items[0].agg, AggFn::kSum);
  EXPECT_EQ(q.select_items[1].agg, AggFn::kAvg);
  EXPECT_EQ(q.select_items[2].agg, AggFn::kMin);
  EXPECT_EQ(q.select_items[3].agg, AggFn::kMax);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t alias extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE a < b").ok());
}

class BinderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 200;  // schema only matters here
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* BinderTest::db_ = nullptr;

TEST_F(BinderTest, ResolvesQualifiedAndUnqualified) {
  auto q = ParseAndBind(db_->catalog(),
                        "SELECT objid, ra FROM photoobj WHERE dec > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().num_slots(), 1);
  EXPECT_EQ(q.value().select_columns.size(), 2u);
  EXPECT_EQ(q.value().filters.size(), 1u);
}

TEST_F(BinderTest, ClassifiesJoinsVsFilters) {
  auto q = ParseAndBind(
      db_->catalog(),
      "SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.bestobjid "
      "WHERE s.z > 0.1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().joins.size(), 1u);
  EXPECT_EQ(q.value().filters.size(), 1u);
  EXPECT_EQ(q.value().joins[0].left.slot, 0);
  EXPECT_EQ(q.value().joins[0].right.slot, 1);
}

TEST_F(BinderTest, Errors) {
  EXPECT_FALSE(ParseAndBind(db_->catalog(), "SELECT x FROM nosuch").ok());
  EXPECT_FALSE(ParseAndBind(db_->catalog(),
                            "SELECT nosuchcol FROM photoobj").ok());
  // Ambiguous: both photoobj and specobj have mjd.
  EXPECT_FALSE(
      ParseAndBind(db_->catalog(),
                   "SELECT mjd FROM photoobj p, specobj s "
                   "WHERE p.objid = s.bestobjid")
          .ok());
  // Type mismatch: string literal against numeric column.
  EXPECT_FALSE(
      ParseAndBind(db_->catalog(), "SELECT objid FROM photoobj WHERE ra = 'x'")
          .ok());
  // Aggregate mixed with plain column without GROUP BY.
  EXPECT_FALSE(
      ParseAndBind(db_->catalog(), "SELECT objid, COUNT(*) FROM photoobj")
          .ok());
  // Duplicate alias.
  EXPECT_FALSE(ParseAndBind(db_->catalog(),
                            "SELECT p.objid FROM photoobj p, specobj p")
                   .ok());
}

TEST_F(BinderTest, SelectStarExpandsAllColumns) {
  auto q = ParseAndBind(db_->catalog(), "SELECT * FROM plate");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().select_columns.size(), 8u);
}

TEST_F(BinderTest, ReferencedAndPredicateColumns) {
  auto q = ParseAndBind(
      db_->catalog(),
      "SELECT ra FROM photoobj WHERE dec > 0 AND run = 94 ORDER BY mjd");
  ASSERT_TRUE(q.ok());
  auto referenced = q.value().ReferencedColumns(0);
  EXPECT_EQ(referenced.size(), 4u);  // ra, dec, run, mjd
  auto pred_cols = q.value().PredicateColumns(0);
  EXPECT_EQ(pred_cols.size(), 2u);  // dec, run
}

TEST_F(BinderTest, SqlRoundTrip) {
  const char* queries[] = {
      "SELECT objid, ra FROM photoobj WHERE ra BETWEEN 10 AND 20",
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.5",
      "SELECT run, COUNT(*) FROM photoobj GROUP BY run ORDER BY run",
      "SELECT objid FROM photoobj WHERE type = 3 LIMIT 5",
  };
  for (const char* sql : queries) {
    auto q1 = ParseAndBind(db_->catalog(), sql);
    ASSERT_TRUE(q1.ok()) << sql << ": " << q1.status().ToString();
    std::string rendered = q1.value().ToSql(db_->catalog());
    auto q2 = ParseAndBind(db_->catalog(), rendered);
    ASSERT_TRUE(q2.ok()) << rendered << ": " << q2.status().ToString();
    // Round-trip fixpoint: rendering the re-bound query must be identical.
    EXPECT_EQ(rendered, q2.value().ToSql(db_->catalog()));
  }
}

}  // namespace
}  // namespace dbdesign
