// Scale and corner-shape stress tests: larger database, self-joins,
// bigger advisor instances, long COLT streams. These guard against
// super-linear blowups and shapes the focused suites do not reach.

#include <gtest/gtest.h>

#include "colt/colt.h"
#include "cophy/cophy.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "workload/compress.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

TEST(StressTest, SelfJoinPlansAndExecutesCorrectly) {
  SdssConfig cfg;
  cfg.photoobj_rows = 800;
  cfg.seed = 3;
  Database db = BuildSdssDatabase(cfg);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  ASSERT_TRUE(
      db.CreateIndex(
            IndexDef{photo, {db.catalog().table(photo).FindColumn("run")},
                     false})
          .ok());

  // Self-join: pairs of objects in the same run with different camcols.
  auto q = ParseAndBind(
      db.catalog(),
      "SELECT a.objid, b.objid FROM photoobj a JOIN photoobj b "
      "ON a.run = b.run WHERE a.camcol = 1 AND b.camcol = 2 "
      "AND a.field = 11 AND b.field = 11");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Optimizer opt(db.catalog(), db.all_stats());
  for (const PhysicalDesign& design :
       {PhysicalDesign{}, db.CurrentDesign()}) {
    PlanResult r = opt.Optimize(q.value(), design);
    ASSERT_NE(r.root, nullptr);
    Executor exec(db);
    auto rows = exec.Execute(q.value(), *r.root);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(CanonicalizeResult(rows.value()),
              CanonicalizeResult(exec.ExecuteNaive(q.value())));
  }
}

TEST(StressTest, InumHandlesSelfJoins) {
  SdssConfig cfg;
  cfg.photoobj_rows = 1500;
  cfg.seed = 5;
  Database db = BuildSdssDatabase(cfg);
  auto q = ParseAndBind(
      db.catalog(),
      "SELECT a.objid FROM photoobj a JOIN photoobj b ON a.parentid = b.objid "
      "WHERE b.type = 3 AND a.nchild > 0");
  ASSERT_TRUE(q.ok());
  InumCostModel inum(db);
  WhatIfOptimizer exact(db);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  const TableDef& def = db.catalog().table(photo);
  for (const char* col : {"objid", "parentid", "type"}) {
    PhysicalDesign design;
    design.AddIndex(IndexDef{photo, {def.FindColumn(col)}, false});
    double fast = inum.Cost(q.value(), design);
    double full = exact.CostUnder(q.value(), design);
    EXPECT_GE(fast, full * 0.98) << col;
    EXPECT_LE(fast, full * 1.25) << col;
  }
}

TEST(StressTest, FiftyThousandRowPipeline) {
  SdssConfig cfg;
  cfg.photoobj_rows = 50000;
  cfg.seed = 7;
  Database db = BuildSdssDatabase(cfg);
  Workload w = GenerateWorkload(db, TemplateMix::OfflineDefault(), 30, 11);

  double pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  CoPhyOptions opts;
  opts.storage_budget_pages = pages;
  CoPhyAdvisor advisor(db, CostParams{}, opts);
  IndexRecommendation rec = advisor.Recommend(w);
  EXPECT_GT(rec.improvement(), 0.3);
  EXPECT_LE(rec.gap, 0.05);
}

TEST(StressTest, LongColtStreamStaysBounded) {
  SdssConfig cfg;
  cfg.photoobj_rows = 3000;
  cfg.seed = 13;
  Database db = BuildSdssDatabase(cfg);
  ColtOptions opts;
  opts.epoch_length = 25;
  opts.max_candidates = 16;
  ColtTuner tuner(db, CostParams{}, opts);
  std::vector<BoundQuery> stream = GenerateDriftingStream(
      db,
      {TemplateMix::PhaseSelections(), TemplateMix::PhaseJoins(),
       TemplateMix::PhaseAggregates(), TemplateMix::PhaseSelections()},
      250, 17);
  for (const BoundQuery& q : stream) tuner.OnQuery(q);
  EXPECT_EQ(tuner.epochs().size(), 40u);
  // Candidate pool bounded as configured, budget respected per epoch.
  for (const ColtEpochReport& e : tuner.epochs()) {
    EXPECT_LE(e.whatif_calls, 24);
  }
  // Cumulative cost accounting is self-consistent.
  double sum_epochs = 0.0;
  for (const ColtEpochReport& e : tuner.epochs()) {
    sum_epochs += e.observed_cost;
  }
  EXPECT_GT(tuner.cumulative_query_cost(), 0.0);
  EXPECT_GE(tuner.cumulative_cost(),
            tuner.cumulative_query_cost());
}

TEST(StressTest, CompressionScalesToThousands) {
  SdssConfig cfg;
  cfg.photoobj_rows = 2000;
  cfg.seed = 19;
  Database db = BuildSdssDatabase(cfg);
  Workload big = GenerateWorkload(db, TemplateMix::Uniform(), 2000, 23);
  CompressionReport report;
  Workload small = CompressWorkload(big, &report);
  EXPECT_EQ(report.original_queries, 2000u);
  EXPECT_LE(report.compressed_queries, 64u);
  double total = 0.0;
  for (size_t i = 0; i < small.size(); ++i) total += small.WeightOf(i);
  EXPECT_DOUBLE_EQ(total, 2000.0);
}

TEST(StressTest, WidePredicateQueryPlansQuickly) {
  // A query filtering on many columns stresses candidate matching and
  // the access-path generator under a design with many indexes.
  SdssConfig cfg;
  cfg.photoobj_rows = 2000;
  cfg.seed = 29;
  Database db = BuildSdssDatabase(cfg);
  TableId photo = db.catalog().FindTable(kPhotoObj);
  const TableDef& def = db.catalog().table(photo);
  PhysicalDesign design;
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    design.AddIndex(IndexDef{photo, {c}, false});
  }
  auto q = ParseAndBind(
      db.catalog(),
      "SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 200 AND "
      "dec > -30 AND run = 94 AND camcol <= 4 AND type = 3 AND "
      "psfmag_r < 21 AND clean = 1 AND mode = 1 AND score > 0.1");
  ASSERT_TRUE(q.ok());
  Optimizer opt(db.catalog(), db.all_stats());
  PlanResult r = opt.Optimize(q.value(), design);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(std::isfinite(r.cost));
  Executor exec(db);
  // Execute with whatever index the optimizer picked after building it.
  if (r.root->index.has_value()) {
    ASSERT_TRUE(db.CreateIndex(*r.root->index).ok());
  }
  auto rows = exec.Execute(q.value(), *r.root);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(CanonicalizeResult(rows.value()),
            CanonicalizeResult(exec.ExecuteNaive(q.value())));
}

}  // namespace
}  // namespace dbdesign
