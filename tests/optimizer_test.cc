// Optimizer tests: access-path choice, join methods, knobs, partitions,
// and cost-model monotonicity properties.

#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/optimizer.h"
#include "sql/binder.h"
#include "whatif/whatif.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 8000;
    cfg.seed = 7;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    return q.value();
  }

  static bool PlanUses(const PlanNode& node, PlanNodeType type) {
    if (node.type == type) return true;
    for (const PlanNodeRef& c : node.children) {
      if (PlanUses(*c, type)) return true;
    }
    return false;
  }

  static Database* db_;
};

Database* OptimizerTest::db_ = nullptr;

TEST_F(OptimizerTest, SeqScanWhenNoIndexes) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign empty;
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 11");
  PlanResult r = opt.Optimize(q, empty);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kSeqScan));
  EXPECT_FALSE(PlanUses(*r.root, PlanNodeType::kIndexScan));
  EXPECT_GT(r.cost, 0.0);
}

TEST_F(OptimizerTest, SelectiveQueryPrefersIndex) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  design.AddIndex(IndexDef{photo, {ra}, false});

  BoundQuery q = Q("SELECT objid, ra FROM photoobj WHERE ra BETWEEN 10 AND 10.5");
  PlanResult with_index = opt.Optimize(q, design);
  PlanResult without = opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(with_index.root, nullptr);
  EXPECT_TRUE(PlanUses(*with_index.root, PlanNodeType::kIndexScan));
  EXPECT_LT(with_index.cost, without.cost);
}

TEST_F(OptimizerTest, UnselectiveQueryIgnoresIndex) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  design.AddIndex(IndexDef{photo, {ra}, false});

  // ra spans [0, 360): this predicate keeps nearly everything.
  BoundQuery q = Q("SELECT objid, dec FROM photoobj WHERE ra >= 1.0");
  PlanResult r = opt.Optimize(q, design);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kSeqScan));
}

TEST_F(OptimizerTest, CoveringIndexEnablesIndexOnlyScan) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  ColumnId objid = db_->catalog().table(photo).FindColumn("objid");
  design.AddIndex(IndexDef{photo, {ra, objid}, false});

  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 40 AND 44");
  PlanResult r = opt.Optimize(q, design);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kIndexOnlyScan));
}

TEST_F(OptimizerTest, MultiColumnIndexMatchesEqThenRange) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId run = db_->catalog().table(photo).FindColumn("run");
  ColumnId camcol = db_->catalog().table(photo).FindColumn("camcol");
  ColumnId field = db_->catalog().table(photo).FindColumn("field");
  design.AddIndex(IndexDef{photo, {run, camcol, field}, false});

  BoundQuery q = Q(
      "SELECT objid FROM photoobj WHERE run = 94 AND camcol = 3 "
      "AND field BETWEEN 11 AND 15");
  PlanResult r = opt.Optimize(q, design);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kIndexScan) ||
              PlanUses(*r.root, PlanNodeType::kIndexOnlyScan));
  // All three predicates should be index conditions (none residual).
  const PlanNode* scan = r.root.get();
  while (!scan->children.empty() && !scan->index.has_value()) {
    scan = scan->child(0);
  }
  ASSERT_TRUE(scan->index.has_value());
  EXPECT_EQ(scan->index_conds.size(), 3u);
  EXPECT_TRUE(scan->filter.empty());
}

TEST_F(OptimizerTest, JoinQueryProducesJoinPlan) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.4");
  PlanResult r = opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kHashJoin) ||
              PlanUses(*r.root, PlanNodeType::kMergeJoin) ||
              PlanUses(*r.root, PlanNodeType::kNestLoopJoin));
}

TEST_F(OptimizerTest, IndexNestLoopChosenWithJoinIndex) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId objid = db_->catalog().table(photo).FindColumn("objid");
  design.AddIndex(IndexDef{photo, {objid}, false});

  // Very selective outer (specobj filtered hard) + index on inner join col.
  BoundQuery q = Q(
      "SELECT p.objid, s.z FROM specobj s JOIN photoobj p "
      "ON s.bestobjid = p.objid WHERE s.z BETWEEN 2.9 AND 3.0");
  PlanResult r = opt.Optimize(q, design);
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kIndexNestLoopJoin));
}

TEST_F(OptimizerTest, KnobsDisableJoinMethods) {
  BoundQuery q = Q(
      "SELECT p.objid FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid");
  PlannerKnobs knobs;
  knobs.enable_hashjoin = false;
  knobs.enable_indexnestloop = false;
  Optimizer opt(db_->catalog(), db_->all_stats(), CostParams{}, knobs);
  PlanResult r = opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(r.root, nullptr);
  EXPECT_FALSE(PlanUses(*r.root, PlanNodeType::kHashJoin));
  EXPECT_FALSE(PlanUses(*r.root, PlanNodeType::kIndexNestLoopJoin));
}

TEST_F(OptimizerTest, KnobsRelaxWhenOverConstrained) {
  BoundQuery q = Q(
      "SELECT p.objid FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid");
  PlannerKnobs knobs;
  knobs.enable_hashjoin = false;
  knobs.enable_mergejoin = false;
  knobs.enable_nestloop = false;
  knobs.enable_indexnestloop = false;
  Optimizer opt(db_->catalog(), db_->all_stats(), CostParams{}, knobs);
  PlanResult r = opt.Optimize(q, PhysicalDesign{});
  // PostgreSQL-style soft knobs: a plan must still come out.
  ASSERT_NE(r.root, nullptr);
}

TEST_F(OptimizerTest, GroupByUsesAggregation) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  BoundQuery q = Q("SELECT run, COUNT(*) FROM photoobj GROUP BY run");
  PlanResult r = opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(r.root, nullptr);
  EXPECT_TRUE(PlanUses(*r.root, PlanNodeType::kHashAggregate) ||
              PlanUses(*r.root, PlanNodeType::kGroupAggregate));
}

TEST_F(OptimizerTest, OrderByIndexAvoidsSort) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId mjd = db_->catalog().table(photo).FindColumn("mjd");
  BoundQuery q = Q("SELECT mjd FROM photoobj ORDER BY mjd LIMIT 100");

  PlanResult without = opt.Optimize(q, PhysicalDesign{});
  ASSERT_NE(without.root, nullptr);
  EXPECT_TRUE(PlanUses(*without.root, PlanNodeType::kSort));

  PhysicalDesign design;
  design.AddIndex(IndexDef{photo, {mjd}, false});
  PlanResult with_index = opt.Optimize(q, design);
  ASSERT_NE(with_index.root, nullptr);
  EXPECT_FALSE(PlanUses(*with_index.root, PlanNodeType::kSort));
  // LIMIT makes the ordered index scan dramatically cheaper.
  EXPECT_LT(with_index.cost, without.cost);
}

TEST_F(OptimizerTest, VerticalPartitioningCutsSeqScanCost) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  BoundQuery q = Q("SELECT objid, ra FROM photoobj WHERE ra > 350");

  PlanResult wide = opt.Optimize(q, PhysicalDesign{});

  // Fragment {objid, ra, dec} vs the 22 remaining columns.
  const TableDef& def = db_->catalog().table(photo);
  VerticalFragment narrow;
  narrow.columns = {def.FindColumn("objid"), def.FindColumn("ra"),
                    def.FindColumn("dec")};
  std::sort(narrow.columns.begin(), narrow.columns.end());
  VerticalFragment rest;
  for (ColumnId c = 0; c < def.num_columns(); ++c) {
    if (!narrow.Covers(c)) rest.columns.push_back(c);
  }
  VerticalPartitioning vp;
  vp.table = photo;
  vp.fragments = {narrow, rest};
  PhysicalDesign design;
  design.SetVerticalPartitioning(vp);

  PlanResult partitioned = opt.Optimize(q, design);
  ASSERT_NE(partitioned.root, nullptr);
  EXPECT_LT(partitioned.cost, wide.cost * 0.5)
      << "narrow fragment scan should be far cheaper than the wide scan";
}

TEST_F(OptimizerTest, HorizontalPartitioningPrunes) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ColumnId ra = db_->catalog().table(photo).FindColumn("ra");
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 102");

  PlanResult unpartitioned = opt.Optimize(q, PhysicalDesign{});

  HorizontalPartitioning hp;
  hp.table = photo;
  hp.column = ra;
  for (int b = 1; b < 16; ++b) hp.bounds.push_back(Value(b * 22.5));
  PhysicalDesign design;
  design.SetHorizontalPartitioning(hp);

  PlanResult pruned = opt.Optimize(q, design);
  ASSERT_NE(pruned.root, nullptr);
  EXPECT_LT(pruned.cost, unpartitioned.cost * 0.5);
}

TEST_F(OptimizerTest, CostMonotoneInSupersetDesigns) {
  // Adding indexes can only help (optimizer picks the min over paths).
  Optimizer opt(db_->catalog(), db_->all_stats());
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);

  Rng rng(31);
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 12, 55);
  PhysicalDesign d1;
  d1.AddIndex(IndexDef{photo, {def.FindColumn("ra")}, false});
  PhysicalDesign d2 = d1;
  d2.AddIndex(IndexDef{photo, {def.FindColumn("run"),
                               def.FindColumn("camcol")}, false});
  d2.AddIndex(IndexDef{photo, {def.FindColumn("objid")}, false});

  for (const BoundQuery& q : w.queries) {
    double c1 = opt.Optimize(q, d1).cost;
    double c2 = opt.Optimize(q, d2).cost;
    EXPECT_LE(c2, c1 * 1.0000001) << q.ToSql(db_->catalog());
  }
}

TEST_F(OptimizerTest, PlanCardinalityConsistency) {
  // Estimated rows at the root must not exceed the cartesian bound and
  // must be >= min_rows.
  Optimizer opt(db_->catalog(), db_->all_stats());
  Workload w = GenerateWorkload(*db_, TemplateMix::Uniform(), 20, 77);
  for (const BoundQuery& q : w.queries) {
    PlanResult r = opt.Optimize(q, PhysicalDesign{});
    ASSERT_NE(r.root, nullptr);
    double cartesian = 1.0;
    for (TableId t : q.tables) cartesian *= db_->stats(t).row_count;
    EXPECT_GE(r.root->rows, 1.0);
    if (q.limit < 0 && q.group_by.empty() && !q.HasAggregates()) {
      EXPECT_LE(r.root->rows, cartesian * 1.0000001);
    }
  }
}

TEST_F(OptimizerTest, ExplainRendering) {
  Optimizer opt(db_->catalog(), db_->all_stats());
  PhysicalDesign design;
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  design.AddIndex(
      IndexDef{photo, {db_->catalog().table(photo).FindColumn("ra")}, false});
  BoundQuery q = Q("SELECT objid FROM photoobj WHERE ra BETWEEN 5 AND 6");
  PlanResult r = opt.Optimize(q, design);
  std::string text = r.root->ToString(db_->catalog(), q);
  EXPECT_NE(text.find("IndexScan"), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
}

}  // namespace
}  // namespace dbdesign
