// Index interaction tests: doi properties, graph rendering/filtering,
// and materialization scheduling.

#include <gtest/gtest.h>

#include <cmath>

#include "interaction/doi.h"
#include "interaction/graph.h"
#include "interaction/schedule.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class InteractionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 13;
    db_ = new Database(BuildSdssDatabase(cfg));
    inum_ = new InumCostModel(*db_);
  }
  static void TearDownTestSuite() {
    delete inum_;
    delete db_;
    inum_ = nullptr;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static IndexDef Idx(const char* table, std::vector<const char*> cols) {
    TableId t = db_->catalog().FindTable(table);
    IndexDef idx;
    idx.table = t;
    for (const char* c : cols) {
      idx.columns.push_back(db_->catalog().table(t).FindColumn(c));
    }
    return idx;
  }

  static Database* db_;
  static InumCostModel* inum_;
};

Database* InteractionTest::db_ = nullptr;
InumCostModel* InteractionTest::inum_ = nullptr;

TEST_F(InteractionTest, AlternativeIndexesInteractStrongly) {
  // Two indexes that serve the same predicate are classic strong
  // interactors: once one exists, the other's benefit collapses.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 101"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"ra", "dec"}),
      Idx("photoobj", {"mjd"}),  // irrelevant to the query
  };
  InteractionAnalyzer analyzer(*inum_);
  double doi_alternatives = analyzer.PairDoi(w, indexes, 0, 1);
  double doi_unrelated = analyzer.PairDoi(w, indexes, 0, 2);
  EXPECT_GT(doi_alternatives, 0.1);
  EXPECT_LT(doi_unrelated, doi_alternatives * 0.1);
}

TEST_F(InteractionTest, IndependentIndexesDoNotInteract) {
  // Indexes on different tables used by different queries.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 101"));
  w.Add(Q("SELECT specobjid FROM specobj WHERE z BETWEEN 2.0 AND 2.2"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("specobj", {"z"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  EXPECT_NEAR(analyzer.PairDoi(w, indexes, 0, 1), 0.0, 1e-6);
}

TEST_F(InteractionTest, JoinIndexesInteract) {
  // Outer filter index and inner lookup index cooperate in an INLJ —
  // the inner index's benefit depends on the outer index existing.
  Workload w;
  w.Add(Q("SELECT p.objid, s.z FROM specobj s JOIN photoobj p "
          "ON s.bestobjid = p.objid WHERE s.z BETWEEN 2.8 AND 3.0"));
  std::vector<IndexDef> indexes = {
      Idx("specobj", {"z"}),
      Idx("photoobj", {"objid"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  EXPECT_GT(analyzer.PairDoi(w, indexes, 0, 1), 0.0);
}

TEST_F(InteractionTest, DoiIsSymmetricallyComputedAndNonNegative) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 8, 91);
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"type"}),
      Idx("specobj", {"z"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      EXPECT_GE(analyzer.PairDoi(w, indexes, a, b), 0.0);
    }
  }
}

TEST_F(InteractionTest, GraphTopKFilterAndDot) {
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 101"));
  w.Add(Q("SELECT objid FROM photoobj WHERE type = 3 AND ra < 10"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"ra", "dec"}),
      Idx("photoobj", {"type"}),
      Idx("photoobj", {"type", "ra"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  std::vector<InteractionEdge> edges = analyzer.Analyze(w, indexes);
  ASSERT_GE(edges.size(), 2u);
  // Edges sorted by weight descending.
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].doi, edges[i].doi);
  }
  InteractionGraph graph(db_->catalog(), indexes, edges);
  size_t all = graph.edges().size();
  graph.SetDisplayedEdges(1);
  EXPECT_EQ(graph.edges().size(), 1u);
  graph.SetDisplayedEdges(-1);
  EXPECT_EQ(graph.edges().size(), all);

  std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("graph index_interactions"), std::string::npos);
  EXPECT_NE(dot.find("idx_photoobj_ra"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  std::string ascii = graph.ToAscii();
  EXPECT_NE(ascii.find("doi="), std::string::npos);
}

TEST_F(InteractionTest, GreedyScheduleFrontLoadsBenefit) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 93);
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra", "dec"}),
      Idx("photoobj", {"ra"}),  // redundant with the first
      Idx("photoobj", {"run", "camcol", "field"}),
      Idx("specobj", {"bestobjid"}),
      Idx("specobj", {"z"}),
  };
  MaterializationScheduler scheduler(*inum_);
  MaterializationSchedule greedy = scheduler.Greedy(w, indexes);

  ASSERT_EQ(greedy.steps.size(), indexes.size());
  // Same final configuration regardless of order.
  MaterializationSchedule solo = scheduler.SoloBenefitOrder(w, indexes);
  EXPECT_NEAR(greedy.final_cost, solo.final_cost, 1e-6);
  // Workload cost never increases as indexes are added.
  double prev = greedy.base_cost;
  for (const ScheduleStep& s : greedy.steps) {
    EXPECT_LE(s.cost_after, prev + 1e-6);
    prev = s.cost_after;
  }
  // Greedy must do at least as well as the oblivious order, and beat a
  // deliberately bad (reversed-greedy) order.
  EXPECT_GE(greedy.BenefitArea(), solo.BenefitArea() * 0.999);
  std::vector<int> reversed;
  for (int i = static_cast<int>(indexes.size()) - 1; i >= 0; --i) {
    // Reverse of greedy's own order, as an adversarial baseline.
    reversed.push_back(i);
  }
  MaterializationSchedule bad = scheduler.FixedOrder(w, indexes, reversed);
  EXPECT_NEAR(bad.final_cost, greedy.final_cost, 1e-6);
}

TEST_F(InteractionTest, ScheduleBenefitAreaRewardsEarlyBenefit) {
  // Two-index synthetic check of the area metric itself: building the
  // high-benefit index first must yield a larger area.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 100.5"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),   // high benefit
      Idx("photoobj", {"mjd"}),  // irrelevant
  };
  MaterializationScheduler scheduler(*inum_);
  MaterializationSchedule good = scheduler.FixedOrder(w, indexes, {0, 1});
  MaterializationSchedule bad = scheduler.FixedOrder(w, indexes, {1, 0});
  EXPECT_GT(good.BenefitArea(), bad.BenefitArea());
  EXPECT_NEAR(good.final_cost, bad.final_cost, 1e-6);
}


TEST_F(InteractionTest, GreedyDominatesSoloBenefitUnderNegativeInteraction) {
  // Differential regression pin for WHY the scheduler exists. Forced
  // negative interaction: photoobj ra and dec both serve q1's conjunct
  // — whichever is built first collapses the other's marginal benefit —
  // while the specobj z index serves q2 independently with a smaller
  // solo benefit. The interaction-oblivious solo order builds the two
  // redundant indexes back to back and wastes its second build; greedy
  // detours to the independent index. Greedy's cumulative benefit must
  // dominate at EVERY prefix.
  // All three indexes are single 8-byte columns on photoobj, so build
  // pages are identical and greedy's benefit-rate ordering coincides
  // with plain benefit ordering — the comparison isolates interaction
  // awareness, not index-size accidents.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 100.8 "
          "AND dec BETWEEN -0.05 AND 0.05"),
        3.0);
  w.Add(Q("SELECT objid FROM photoobj WHERE rowc < 5"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"dec"}),
      Idx("photoobj", {"rowc"}),
  };
  MaterializationScheduler scheduler(*inum_);
  MaterializationSchedule greedy = scheduler.Greedy(w, indexes);
  MaterializationSchedule solo = scheduler.SoloBenefitOrder(w, indexes);
  ASSERT_EQ(greedy.steps.size(), indexes.size());
  ASSERT_EQ(solo.steps.size(), indexes.size());

  // The setup really does force the negative interaction and the solo
  // ranking this test is about: both redundant indexes out-benefit the
  // independent one solo, so solo order builds them back to back.
  InteractionAnalyzer analyzer(*inum_);
  EXPECT_GT(analyzer.PairDoi(w, indexes, 0, 1), 0.01);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_TRUE(solo.steps[k].index == indexes[0] ||
                solo.steps[k].index == indexes[1])
        << "solo-benefit order must rank the redundant pair first";
  }

  for (size_t k = 1; k <= indexes.size(); ++k) {
    EXPECT_GE(greedy.BenefitAtPrefix(k) + 1e-6, solo.BenefitAtPrefix(k))
        << "greedy prefix " << k << " fell behind the oblivious order";
  }
  // Strictly better somewhere, or the pin is vacuous.
  EXPECT_GT(greedy.BenefitAtPrefix(2), solo.BenefitAtPrefix(2) + 1e-6);
  EXPECT_NEAR(greedy.final_cost, solo.final_cost, 1e-6);
}

TEST_F(InteractionTest, ConstraintAwareScheduleHonorsPinsVetoesAndBudget) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 93);
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra", "dec"}),
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"run", "camcol", "field"}),
      Idx("specobj", {"bestobjid"}),
      Idx("specobj", {"z"}),
  };
  MaterializationScheduler scheduler(*inum_);

  // Vetoes are impossible by construction.
  DesignConstraints veto;
  veto.Veto(indexes[0]);
  MaterializationSchedule vs = scheduler.Greedy(w, indexes, veto);
  EXPECT_EQ(vs.steps.size(), indexes.size() - 1);
  ASSERT_EQ(vs.skipped.size(), 1u);
  EXPECT_TRUE(vs.skipped[0] == indexes[0]);
  for (const ScheduleStep& s : vs.steps) {
    EXPECT_FALSE(s.index == indexes[0]);
  }

  // Pins build first even when greedy would not choose them.
  DesignConstraints pin;
  pin.Pin(indexes[2]);
  pin.Pin(indexes[3]);
  MaterializationSchedule ps = scheduler.Greedy(w, indexes, pin);
  ASSERT_EQ(ps.steps.size(), indexes.size());
  EXPECT_TRUE(ps.steps[0].pinned);
  EXPECT_TRUE(ps.steps[1].pinned);
  for (size_t k = 2; k < ps.steps.size(); ++k) {
    EXPECT_FALSE(ps.steps[k].pinned);
  }

  // The storage budget holds at EVERY intermediate step; what does not
  // fit is skipped, never built.
  MaterializationSchedule all = scheduler.Greedy(w, indexes);
  ASSERT_GE(all.steps.size(), 3u);
  double budget = all.steps[1].cumulative_pages;  // room for two builds
  DesignConstraints capped;
  capped.storage_budget_pages = budget;
  MaterializationSchedule bs = scheduler.Greedy(w, indexes, capped);
  EXPECT_LT(bs.steps.size(), indexes.size());
  EXPECT_EQ(bs.steps.size() + bs.skipped.size(), indexes.size());
  for (const ScheduleStep& s : bs.steps) {
    EXPECT_LE(s.cumulative_pages, budget + 1e-9);
  }
}

TEST_F(InteractionTest, ClustersPartitionTheIndexSet) {
  // photoobj and specobj indexes serve disjoint queries here, so they
  // must land in different clusters.
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 101"));
  w.Add(Q("SELECT specobjid FROM specobj WHERE z BETWEEN 2.0 AND 2.2"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"ra", "dec"}),
      Idx("specobj", {"z"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  DoiMatrix m = analyzer.AnalyzeMatrix(w, indexes);
  std::vector<std::vector<int>> clusters = m.Clusters();
  size_t members = 0;
  for (const auto& c : clusters) members += c.size();
  EXPECT_EQ(members, indexes.size());
  // The two photoobj alternatives interact; the specobj index is alone.
  ASSERT_GE(clusters.size(), 2u);
  std::vector<int> photo_cluster = {0, 1};
  EXPECT_EQ(clusters[0], photo_cluster);
  std::vector<int> spec_cluster = {2};
  EXPECT_EQ(clusters[1], spec_cluster);

  // InteractionGraph::Clusters agrees.
  InteractionGraph graph(db_->catalog(), indexes, m.Edges());
  EXPECT_EQ(graph.Clusters(), clusters);
}

TEST_F(InteractionTest, JsonExportIsWellFormed) {
  Workload w;
  w.Add(Q("SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 101"));
  std::vector<IndexDef> indexes = {
      Idx("photoobj", {"ra"}),
      Idx("photoobj", {"ra", "dec"}),
  };
  InteractionAnalyzer analyzer(*inum_);
  InteractionGraph graph(db_->catalog(), indexes,
                         analyzer.Analyze(w, indexes));
  std::string json = graph.ToJson();
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("idx_photoobj_ra_dec"), std::string::npos);
  EXPECT_NE(json.find("\"doi\""), std::string::npos);
  // Balanced braces / brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace dbdesign
