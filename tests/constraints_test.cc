// Constraint-semantics tests: DesignConstraints validation + JSON
// round-trips, ConstraintDelta application, and the contract every
// advisor must honor — pins always present, vetoes never present,
// per-table caps and storage budgets respected (CoPhy, Greedy, COLT,
// AutoPart).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "autopart/autopart.h"
#include "catalog/design_json.h"
#include "colt/colt.h"
#include "cophy/cophy.h"
#include "cophy/greedy.h"
#include "core/constraints.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 4000;
    cfg.seed = 11;
    db_ = new Database(BuildSdssDatabase(cfg));
    workload_ = new Workload(
        GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 12, 23));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete workload_;
    db_ = nullptr;
    workload_ = nullptr;
  }

  static TableId Table(const char* name) {
    return db_->catalog().FindTable(name);
  }
  static ColumnId Column(TableId t, const char* name) {
    return db_->catalog().table(t).FindColumn(name);
  }
  static IndexDef Index(const char* table,
                        std::initializer_list<const char*> cols) {
    TableId t = Table(table);
    IndexDef idx;
    idx.table = t;
    for (const char* c : cols) idx.columns.push_back(Column(t, c));
    return idx;
  }
  static double DataPages() {
    double pages = 0.0;
    for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
      pages += db_->stats(t).HeapPages(db_->catalog().table(t));
    }
    return pages;
  }
  static bool HasIndex(const std::vector<IndexDef>& v, const IndexDef& idx) {
    return std::find(v.begin(), v.end(), idx) != v.end();
  }

  static Database* db_;
  static Workload* workload_;
};

Database* ConstraintsTest::db_ = nullptr;
Workload* ConstraintsTest::workload_ = nullptr;

// --- The constraint object itself ---

TEST_F(ConstraintsTest, JsonRoundTrip) {
  DesignConstraints c;
  c.Pin(Index("photoobj", {"ra", "dec"}));
  c.Veto(Index("specobj", {"z"}));
  c.VetoColumn(ColumnRef{Table("photoobj"), Column(Table("photoobj"), "rerun")});
  c.max_indexes_per_table[Table("photoobj")] = 3;
  c.storage_budget_pages = 1234.5;
  c.partitioning_enabled = true;
  c.partition_denied_tables.push_back(Table("specobj"));

  ASSERT_TRUE(c.Validate(db_->catalog()).ok());
  std::string dumped = c.ToJson().Dump();
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto restored = DesignConstraints::FromJson(parsed.value(), db_->catalog());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), c);
  // Deterministic encoding: dumping the restored object is identical.
  EXPECT_EQ(restored.value().ToJson().Dump(), dumped);
}

TEST_F(ConstraintsTest, UnlimitedBudgetSurvivesRoundTrip) {
  DesignConstraints c;
  c.Pin(Index("photoobj", {"ra"}));
  auto parsed = Json::Parse(c.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  auto restored = DesignConstraints::FromJson(parsed.value(), db_->catalog());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(std::isinf(restored.value().storage_budget_pages));
}

TEST_F(ConstraintsTest, ValidateCatchesContradictions) {
  // Pin + veto of the same index.
  DesignConstraints c;
  c.Pin(Index("photoobj", {"ra"}));
  c.Veto(Index("photoobj", {"ra"}));
  EXPECT_EQ(c.Validate(db_->catalog()).code(), StatusCode::kInvalidArgument);

  // Pin touching a vetoed column.
  DesignConstraints c2;
  c2.Pin(Index("photoobj", {"ra", "dec"}));
  c2.VetoColumn(ColumnRef{Table("photoobj"), Column(Table("photoobj"), "dec")});
  EXPECT_EQ(c2.Validate(db_->catalog()).code(), StatusCode::kInvalidArgument);

  // More pins on a table than its cap allows.
  DesignConstraints c3;
  c3.Pin(Index("photoobj", {"ra"}));
  c3.Pin(Index("photoobj", {"dec"}));
  c3.max_indexes_per_table[Table("photoobj")] = 1;
  EXPECT_EQ(c3.Validate(db_->catalog()).code(), StatusCode::kInvalidArgument);

  // Out-of-range ids.
  DesignConstraints c4;
  c4.Pin(IndexDef{999, {0}, false});
  EXPECT_FALSE(c4.Validate(db_->catalog()).ok());
  DesignConstraints c5;
  c5.max_indexes_per_table[Table("photoobj")] = -2;
  EXPECT_FALSE(c5.Validate(db_->catalog()).ok());
}

TEST_F(ConstraintsTest, DeltaApplySemantics) {
  DesignConstraints c;
  ConstraintDelta d;
  d.pin.push_back(Index("photoobj", {"ra"}));
  d.veto.push_back(Index("specobj", {"z"}));
  d.storage_budget_pages = 500.0;
  d.table_caps[Table("photoobj")] = 2;
  ASSERT_TRUE(ApplyConstraintDelta(d, db_->catalog(), &c).ok());
  EXPECT_TRUE(c.IsPinned(Index("photoobj", {"ra"})));
  EXPECT_TRUE(c.IsVetoed(Index("specobj", {"z"})));
  EXPECT_DOUBLE_EQ(c.storage_budget_pages, 500.0);
  EXPECT_EQ(c.TableCap(Table("photoobj")), std::optional<int>(2));

  // Unpin / uncap / clear budget.
  ConstraintDelta undo;
  undo.unpin.push_back(Index("photoobj", {"ra"}));
  undo.table_caps[Table("photoobj")] = -1;
  undo.storage_budget_pages = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(ApplyConstraintDelta(undo, db_->catalog(), &c).ok());
  EXPECT_FALSE(c.IsPinned(Index("photoobj", {"ra"})));
  EXPECT_FALSE(c.TableCap(Table("photoobj")).has_value());
  EXPECT_TRUE(std::isinf(c.storage_budget_pages));

  // A contradictory delta fails atomically: constraints are unchanged.
  DesignConstraints before = c;
  ConstraintDelta bad;
  bad.pin.push_back(Index("specobj", {"z"}));  // still vetoed
  EXPECT_FALSE(ApplyConstraintDelta(bad, db_->catalog(), &c).ok());
  EXPECT_EQ(c, before);
}

TEST_F(ConstraintsTest, PartitioningAllowDeny) {
  DesignConstraints c;
  EXPECT_TRUE(c.PartitioningAllowed(Table("photoobj")));
  c.partition_denied_tables.push_back(Table("photoobj"));
  EXPECT_FALSE(c.PartitioningAllowed(Table("photoobj")));
  EXPECT_TRUE(c.PartitioningAllowed(Table("specobj")));
  c.partition_allowed_tables.push_back(Table("specobj"));
  EXPECT_TRUE(c.PartitioningAllowed(Table("specobj")));
  EXPECT_FALSE(c.PartitioningAllowed(Table("field")));  // not on allow list
  c.partitioning_enabled = false;
  EXPECT_FALSE(c.PartitioningAllowed(Table("specobj")));
}

TEST_F(ConstraintsTest, PhysicalDesignJsonRoundTrip) {
  PhysicalDesign design;
  design.AddIndex(Index("photoobj", {"ra", "dec"}));
  design.AddIndex(Index("specobj", {"bestobjid"}));
  TableId photo = Table("photoobj");
  const TableDef& pdef = db_->catalog().table(photo);
  VerticalFragment hot;
  hot.columns = {Column(photo, "objid"), Column(photo, "ra"),
                 Column(photo, "dec")};
  std::sort(hot.columns.begin(), hot.columns.end());
  VerticalFragment cold;
  for (ColumnId c = 0; c < pdef.num_columns(); ++c) {
    if (!hot.Covers(c)) cold.columns.push_back(c);
  }
  VerticalPartitioning vp;
  vp.table = photo;
  vp.fragments = {hot, cold};
  design.SetVerticalPartitioning(vp);
  HorizontalPartitioning hp;
  hp.table = photo;
  hp.column = Column(photo, "ra");
  hp.bounds = {Value(90.0), Value(180.0), Value(270.0)};
  design.SetHorizontalPartitioning(hp);

  auto parsed = Json::Parse(PhysicalDesignToJson(design).Dump());
  ASSERT_TRUE(parsed.ok());
  auto restored = PhysicalDesignFromJson(parsed.value(), db_->catalog());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value(), design);
  EXPECT_EQ(restored.value().Fingerprint(), design.Fingerprint());
}

// --- CoPhy under constraints ---

TEST_F(ConstraintsTest, CoPhyHonorsPinsEvenWhenUseless) {
  // Pin an index CoPhy would never mine (rerun is not sargable in the
  // workload): the recommendation must still contain it.
  IndexDef pin = Index("photoobj", {"rerun"});
  DesignConstraints c;
  c.Pin(pin);
  CoPhyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(HasIndex(rec.value().indexes, pin));
  EXPECT_TRUE(rec.value().infeasible_pins.empty());
}

TEST_F(ConstraintsTest, CoPhyHonorsVetoes) {
  CoPhyOptions opts;
  opts.storage_budget_pages = DataPages();
  CoPhyAdvisor baseline(*db_, CostParams{}, opts);
  IndexRecommendation unconstrained = baseline.Recommend(*workload_);
  ASSERT_FALSE(unconstrained.indexes.empty());

  // Veto every index of the unconstrained recommendation.
  DesignConstraints c;
  for (const IndexDef& idx : unconstrained.indexes) c.Veto(idx);
  CoPhyAdvisor advisor(*db_, CostParams{}, opts);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok());
  for (const IndexDef& idx : rec.value().indexes) {
    EXPECT_FALSE(c.IsVetoed(idx)) << idx.DisplayName(db_->catalog());
  }
  // The vetoed optimum can only be matched, never beaten.
  EXPECT_GE(rec.value().recommended_cost,
            unconstrained.recommended_cost - 1e-6);
}

TEST_F(ConstraintsTest, CoPhyHonorsColumnVetoes) {
  TableId photo = Table("photoobj");
  DesignConstraints c;
  c.VetoColumn(ColumnRef{photo, Column(photo, "ra")});
  CoPhyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok());
  for (const IndexDef& idx : rec.value().indexes) {
    if (idx.table != photo) continue;
    EXPECT_EQ(std::find(idx.columns.begin(), idx.columns.end(),
                        Column(photo, "ra")),
              idx.columns.end())
        << idx.DisplayName(db_->catalog()) << " touches vetoed column ra";
  }
}

TEST_F(ConstraintsTest, CoPhyHonorsTableCapsAndBudget) {
  TableId photo = Table("photoobj");
  DesignConstraints c;
  c.max_indexes_per_table[photo] = 1;
  c.storage_budget_pages = 0.3 * DataPages();
  CoPhyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok());
  int photo_indexes = 0;
  for (const IndexDef& idx : rec.value().indexes) {
    photo_indexes += idx.table == photo ? 1 : 0;
  }
  EXPECT_LE(photo_indexes, 1);
  EXPECT_LE(rec.value().total_size_pages, c.storage_budget_pages + 1e-6);
}

TEST_F(ConstraintsTest, CoPhyReportsInfeasiblePins) {
  // A wide pinned index against a budget smaller than the pin itself.
  IndexDef big = Index("photoobj", {"ra", "dec", "type", "psfmag_r"});
  DesignConstraints c;
  c.Pin(big);
  c.storage_budget_pages = 1.0;  // one page: nothing fits
  CoPhyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec.value().infeasible_pins.size(), 1u);
  EXPECT_EQ(rec.value().infeasible_pins[0], big);
  EXPECT_FALSE(HasIndex(rec.value().indexes, big));
}

// --- Greedy under constraints ---

TEST_F(ConstraintsTest, GreedyHonorsConstraints) {
  TableId photo = Table("photoobj");
  IndexDef pin = Index("photoobj", {"rerun"});
  DesignConstraints c;
  c.Pin(pin);
  c.Veto(Index("photoobj", {"ra", "objid"}));
  c.max_indexes_per_table[photo] = 2;
  c.storage_budget_pages = 0.5 * DataPages();

  GreedyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(HasIndex(rec.value().indexes, pin));
  int photo_indexes = 0;
  for (const IndexDef& idx : rec.value().indexes) {
    EXPECT_FALSE(c.IsVetoed(idx)) << idx.DisplayName(db_->catalog());
    photo_indexes += idx.table == photo ? 1 : 0;
  }
  EXPECT_LE(photo_indexes, 2);
  EXPECT_LE(rec.value().total_size_pages, c.storage_budget_pages + 1e-6);
}

TEST_F(ConstraintsTest, GreedyRejectsInfeasiblePins) {
  DesignConstraints c;
  c.Pin(Index("photoobj", {"ra", "dec", "type", "psfmag_r"}));
  c.storage_budget_pages = 1.0;
  GreedyAdvisor advisor(*db_);
  auto rec = advisor.TryRecommend(*workload_, c);
  EXPECT_EQ(rec.status().code(), StatusCode::kResourceExhausted);
}

// --- COLT under constraints ---

TEST_F(ConstraintsTest, ColtHonorsConstraints) {
  TableId photo = Table("photoobj");
  IndexDef pin = Index("specobj", {"bestobjid"});
  ColumnRef vetoed_col{photo, Column(photo, "ra")};

  ColtOptions opts;
  opts.epoch_length = 8;
  ColtTuner tuner(*db_, CostParams{}, opts);
  DesignConstraints c;
  c.Pin(pin);
  c.VetoColumn(vetoed_col);
  c.max_indexes_per_table[photo] = 1;
  ASSERT_TRUE(tuner.SetConstraints(c).ok());

  // The pin is materialized immediately.
  EXPECT_TRUE(tuner.current_design().HasIndex(pin));

  Workload stream =
      GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 40, 17);
  for (const BoundQuery& q : stream.queries) tuner.OnQuery(q);

  // Pins survive every epoch; vetoed columns never appear; the cap holds.
  EXPECT_TRUE(tuner.current_design().HasIndex(pin));
  int photo_indexes = 0;
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    photo_indexes += idx.table == photo ? 1 : 0;
    for (ColumnId col : idx.columns) {
      EXPECT_FALSE(idx.table == vetoed_col.table && col == vetoed_col.column)
          << "vetoed column indexed: " << idx.DisplayName(db_->catalog());
    }
  }
  EXPECT_LE(photo_indexes, 1);
}

TEST_F(ConstraintsTest, ColtVetoDropsBuiltIndex) {
  ColtOptions opts;
  opts.epoch_length = 8;
  opts.build_hysteresis = 0.01;  // build eagerly so something materializes
  ColtTuner tuner(*db_, CostParams{}, opts);
  Workload stream =
      GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 48, 29);
  for (const BoundQuery& q : stream.queries) tuner.OnQuery(q);
  ASSERT_FALSE(tuner.current_design().indexes().empty())
      << "stream too bland: nothing was built";

  IndexDef built = tuner.current_design().indexes().front();
  DesignConstraints c;
  c.Veto(built);
  ASSERT_TRUE(tuner.SetConstraints(c).ok());
  EXPECT_FALSE(tuner.current_design().HasIndex(built));
}

// --- AutoPart under constraints ---

TEST_F(ConstraintsTest, AutoPartRespectsPartitioningControl) {
  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation unconstrained = advisor.Recommend(*workload_);

  DesignConstraints off;
  off.partitioning_enabled = false;
  AutoPartAdvisor advisor2(*db_);
  PartitionRecommendation none = advisor2.Recommend(*workload_, off);
  EXPECT_FALSE(none.design.HasPartitions());

  // Deny just photoobj: it keeps its layout, other tables may partition.
  DesignConstraints deny;
  deny.partition_denied_tables.push_back(Table("photoobj"));
  AutoPartAdvisor advisor3(*db_);
  PartitionRecommendation partial = advisor3.Recommend(*workload_, deny);
  EXPECT_EQ(partial.design.vertical(Table("photoobj")), nullptr);
  EXPECT_EQ(partial.design.horizontal(Table("photoobj")), nullptr);
  (void)unconstrained;
}

}  // namespace
}  // namespace dbdesign
