// Designer facade tests: the three demo scenarios end to end, plus the
// report renderers.

#include <gtest/gtest.h>

#include "core/designer.h"
#include "core/report.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class DesignerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 29;
    db_ = new Database(BuildSdssDatabase(cfg));
    workload_ = new Workload(
        GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 12, 83));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    db_ = nullptr;
    workload_ = nullptr;
  }

  static Database* db_;
  static Workload* workload_;
};

Database* DesignerTest::db_ = nullptr;
Workload* DesignerTest::workload_ = nullptr;

TEST_F(DesignerTest, Scenario1InteractiveWhatIf) {
  Designer designer(*db_);
  // The DBA proposes a design by hand.
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);
  PhysicalDesign manual;
  manual.AddIndex(
      IndexDef{photo, {def.FindColumn("ra"), def.FindColumn("dec")}, false});
  manual.AddIndex(IndexDef{photo, {def.FindColumn("objid")}, false});

  BenefitReport report = designer.EvaluateDesign(*workload_, manual);
  ASSERT_EQ(report.base_costs.size(), workload_->size());
  EXPECT_GT(report.average_benefit(), 0.0);
  EXPECT_LE(report.new_total, report.base_total);

  // Interaction graph over the manual design.
  InteractionGraph graph =
      designer.AnalyzeInteractions(*workload_, manual.indexes());
  EXPECT_EQ(graph.num_nodes(), 2);
  std::string panel = RenderBenefitPanel(db_->catalog(), *workload_, report);
  EXPECT_NE(panel.find("average workload benefit"), std::string::npos);
}

TEST_F(DesignerTest, Scenario2OfflineRecommendation) {
  Designer designer(*db_);
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  OfflineRecommendation rec =
      designer.RecommendOffline(*workload_, data_pages);

  EXPECT_FALSE(rec.indexes.indexes.empty());
  EXPECT_LT(rec.combined_cost, rec.base_cost);
  EXPECT_GT(rec.improvement(), 0.2);
  // Schedule covers exactly the recommended indexes.
  EXPECT_EQ(rec.schedule.steps.size(), rec.indexes.indexes.size());
  // Combined design includes partitions when AutoPart found any.
  if (rec.partitions.improvement() > 0.01) {
    EXPECT_TRUE(rec.combined.HasPartitions());
  }

  std::string text = RenderOfflineRecommendation(db_->catalog(), *db_,
                                                 *workload_, rec);
  EXPECT_NE(text.find("CREATE INDEX"), std::string::npos);
  EXPECT_NE(text.find("Materialization schedule"), std::string::npos);
  EXPECT_NE(text.find("combined design cost"), std::string::npos);
}

TEST_F(DesignerTest, CombinedDesignBeatsIndexesAlone) {
  Designer designer(*db_);
  double data_pages = 0.0;
  for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
    data_pages += db_->stats(t).HeapPages(db_->catalog().table(t));
  }
  OfflineRecommendation rec =
      designer.RecommendOffline(*workload_, data_pages);
  PhysicalDesign indexes_only;
  for (const IndexDef& idx : rec.indexes.indexes) indexes_only.AddIndex(idx);
  double idx_cost = designer.inum().WorkloadCost(*workload_, indexes_only);
  EXPECT_LE(rec.combined_cost, idx_cost * 1.02)
      << "adding partitions must not hurt";
}

TEST_F(DesignerTest, UserSeededCandidatesEnterTheSearch) {
  Designer designer(*db_);
  // Seed with a deliberately odd covering index the miner skips.
  TableId spec = db_->catalog().FindTable(kSpecObj);
  const TableDef& def = db_->catalog().table(spec);
  CandidateIndex seed;
  seed.index = IndexDef{
      spec,
      {def.FindColumn("sn_median"), def.FindColumn("class"),
       def.FindColumn("z")},
      false};
  seed.size_pages = EstimateIndexSize(seed.index, def, db_->stats(spec))
                        .total_pages();
  seed.relevant_queries = 1;

  IndexRecommendation rec = designer.RecommendIndexes(*workload_, {seed});
  EXPECT_LE(rec.recommended_cost, rec.base_cost);
  // The recommendation machinery must at least have considered it.
  EXPECT_GT(rec.num_candidates, 0u);
}

TEST_F(DesignerTest, Scenario3ContinuousTuning) {
  Designer designer(*db_);
  auto tuner = designer.StartContinuousTuning();
  std::vector<BoundQuery> stream = GenerateDriftingStream(
      *db_, {TemplateMix::PhaseSelections()}, 75, 61);
  for (const BoundQuery& q : stream) tuner->OnQuery(q);
  EXPECT_GE(tuner->epochs().size(), 2u);
  EXPECT_FALSE(tuner->events().empty());
}

TEST_F(DesignerTest, WhatIfKnobsReachableThroughFacade) {
  Designer designer(*db_);
  designer.whatif().knobs().enable_hashjoin = false;
  auto q = ParseAndBind(db_->catalog(),
                        "SELECT p.objid FROM photoobj p JOIN specobj s "
                        "ON p.objid = s.bestobjid");
  ASSERT_TRUE(q.ok());
  PlanResult r = designer.whatif().Plan(q.value());
  ASSERT_NE(r.root, nullptr);
  std::function<bool(const PlanNode&)> has_hash =
      [&](const PlanNode& n) {
        if (n.type == PlanNodeType::kHashJoin) return true;
        for (const auto& c : n.children) {
          if (has_hash(*c)) return true;
        }
        return false;
      };
  EXPECT_FALSE(has_hash(*r.root));
}

TEST_F(DesignerTest, BenefitReportAccounting) {
  Designer designer(*db_);
  BenefitReport report =
      designer.EvaluateDesign(*workload_, PhysicalDesign{});
  // Empty design vs empty baseline: zero benefit everywhere.
  EXPECT_NEAR(report.average_benefit(), 0.0, 1e-9);
  for (size_t i = 0; i < workload_->size(); ++i) {
    EXPECT_NEAR(report.query_benefit(i), 0.0, 1e-9);
  }
}


TEST_F(DesignerTest, BenefitJsonExport) {
  Designer designer(*db_);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  PhysicalDesign manual;
  manual.AddIndex(
      IndexDef{photo, {db_->catalog().table(photo).FindColumn("ra")}, false});
  BenefitReport report = designer.EvaluateDesign(*workload_, manual);
  std::string json = RenderBenefitJson(db_->catalog(), *workload_, report);
  EXPECT_NE(json.find("\"average_benefit\""), std::string::npos);
  EXPECT_NE(json.find("\"base_total\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace dbdesign
