// AutoPart tests: atomic fragments, greedy merging, replication budget,
// horizontal partitioning, and query rewriting.

#include <gtest/gtest.h>

#include <set>

#include "autopart/autopart.h"
#include "sql/binder.h"
#include "util/str.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class AutoPartTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SdssConfig cfg;
    cfg.photoobj_rows = 6000;
    cfg.seed = 19;
    db_ = new Database(BuildSdssDatabase(cfg));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static BoundQuery Q(const std::string& sql) {
    auto q = ParseAndBind(db_->catalog(), sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.value();
  }

  static Database* db_;
};

Database* AutoPartTest::db_ = nullptr;

TEST_F(AutoPartTest, NarrowWorkloadGetsVerticalPartitions) {
  // Queries touch only 4 of photoobj's 25 columns: vertical
  // partitioning must pay off massively.
  Workload w;
  w.Add(Q("SELECT objid, ra FROM photoobj WHERE ra BETWEEN 10 AND 40"));
  w.Add(Q("SELECT objid, dec FROM photoobj WHERE dec BETWEEN 0 AND 12"));
  w.Add(Q("SELECT objid FROM photoobj WHERE ra > 300"));

  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation rec = advisor.Recommend(w);

  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const VerticalPartitioning* vp = rec.design.vertical(photo);
  ASSERT_NE(vp, nullptr) << "photoobj should be vertically partitioned";
  EXPECT_GT(vp->fragments.size(), 1u);
  EXPECT_TRUE(vp->CoversTable(db_->catalog().table(photo)));
  EXPECT_LT(rec.final_cost, rec.base_cost * 0.6)
      << "narrow workload should gain >40% from vertical partitioning";
  EXPECT_EQ(rec.per_query_cost.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(rec.per_query_cost[i], rec.per_query_base_cost[i] + 1e-6);
  }
}

TEST_F(AutoPartTest, ReplicationStaysWithinBudget) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 12, 21);
  AutoPartOptions opts;
  opts.replication_budget_factor = 1.15;
  AutoPartAdvisor advisor(*db_, CostParams{}, opts);
  PartitionRecommendation rec = advisor.Recommend(w);
  for (const auto& report : rec.tables) {
    EXPECT_LE(report.replication_factor,
              opts.replication_budget_factor + 1e-9);
  }
}

TEST_F(AutoPartTest, FullWidthWorkloadLeavesTableAlone) {
  // SELECT * touches every column: no useful vertical split exists.
  Workload w;
  w.Add(Q("SELECT * FROM plate WHERE quality >= 2"));
  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation rec = advisor.Recommend(w);
  TableId plate = db_->catalog().FindTable(kPlate);
  const VerticalPartitioning* vp = rec.design.vertical(plate);
  EXPECT_TRUE(vp == nullptr || vp->fragments.size() <= 1u);
}

TEST_F(AutoPartTest, HorizontalPartitioningOnRangeColumn) {
  // Heavy mjd range traffic should trigger horizontal partitioning.
  Workload w;
  for (int i = 0; i < 5; ++i) {
    int64_t lo = 51010 + i * 60;
    w.Add(Q(StrFormat("SELECT objid, mjd FROM photoobj WHERE mjd BETWEEN "
                      "%lld AND %lld",
                      static_cast<long long>(lo),
                      static_cast<long long>(lo + 25))));
  }
  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation rec = advisor.Recommend(w);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const HorizontalPartitioning* hp = rec.design.horizontal(photo);
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->column, db_->catalog().table(photo).FindColumn("mjd"));
  EXPECT_GE(hp->num_partitions(), 3);
  // Bounds strictly increasing.
  for (size_t i = 1; i < hp->bounds.size(); ++i) {
    EXPECT_TRUE(hp->bounds[i - 1] < hp->bounds[i]);
  }
  EXPECT_LT(rec.final_cost, rec.base_cost);
}

TEST_F(AutoPartTest, RewriteMapsColumnsToFragments) {
  Workload w;
  w.Add(Q("SELECT objid, ra FROM photoobj WHERE ra BETWEEN 10 AND 40"));
  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation rec = advisor.Recommend(w);
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  ASSERT_NE(rec.design.vertical(photo), nullptr);

  std::string sql = advisor.RewriteQuery(w.queries[0], rec.design);
  // The rewritten query reads fragment tables, not the base table.
  EXPECT_NE(sql.find("photoobj__f"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("BETWEEN 10 AND 40"), std::string::npos);
}

TEST_F(AutoPartTest, RewriteWithoutPartitionsIsPlainSql) {
  Workload w;
  w.Add(Q("SELECT plateid FROM plate WHERE quality >= 3"));
  AutoPartAdvisor advisor(*db_);
  std::string sql = advisor.RewriteQuery(w.queries[0], PhysicalDesign{});
  EXPECT_EQ(sql.find("__f"), std::string::npos) << sql;
  EXPECT_NE(sql.find("FROM plate"), std::string::npos);
}

TEST_F(AutoPartTest, MixedWorkloadImproves) {
  Workload w = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 15, 27);
  AutoPartAdvisor advisor(*db_);
  PartitionRecommendation rec = advisor.Recommend(w);
  // The SDSS mix references a minority of photoobj's columns, so some
  // improvement is expected even on the mixed workload.
  EXPECT_GT(rec.improvement(), 0.05);
  EXPECT_LE(rec.final_cost, rec.base_cost + 1e-6);
}

}  // namespace
}  // namespace dbdesign
