// Fault-tolerance tests for the backend seam (ISSUE 7).
//
// The stack under test is
//
//   InMemoryBackend -> FaultInjectingBackend(plan) -> ResilientBackend
//
// driven through the *full* session loop (Recommend / Refine /
// PlanDeployment) with InumOptions::force_exact enabled, so every
// costing call actually traverses the fallible seam instead of the
// client-side cost model. The core claims:
//
//   * recoverable fault plans (retries > burst) leave the whole loop
//     BIT-identical to the fault-free run;
//   * a hard outage never aborts: every session API returns a clean
//     Status or an explicitly marked DegradedResult;
//   * poisoned costs never cross the seam;
//   * everything is deterministic: same plan, same answers, same
//     counters.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "backend/fault_backend.h"
#include "backend/inmemory_backend.h"
#include "backend/resilient_backend.h"
#include "backend/trace_backend.h"
#include "colt/colt.h"
#include "core/session.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

DesignerOptions ForceExactOptions() {
  DesignerOptions opts;
  // Route every INUM costing call through the backend so the fault
  // seam is actually on the session loop's hot path.
  opts.cophy.inum.force_exact = true;
  return opts;
}

/// Test decorator whose inner backend can be swapped mid-session:
/// models a connection that goes down (and comes back) underneath a
/// long-lived DesignSession.
class FlipBackend final : public DbmsBackend {
 public:
  explicit FlipBackend(DbmsBackend& target) : target_(&target) {}
  void SetTarget(DbmsBackend& target) { target_ = &target; }

  std::string name() const override { return "flip(" + target_->name() + ")"; }
  const CostParams& cost_params() const override {
    return target_->cost_params();
  }
  const Catalog& catalog() const override { return target_->catalog(); }
  const std::vector<TableStats>& all_stats() const override {
    return target_->all_stats();
  }
  Status RefreshStatistics(TableId table,
                           const AnalyzeOptions& options) override {
    return target_->RefreshStatistics(table, options);
  }
  PhysicalDesign CurrentDesign() const override {
    return target_->CurrentDesign();
  }
  Result<PlanResult> OptimizeQuery(const BoundQuery& query,
                                   const PhysicalDesign& design,
                                   const PlannerKnobs& knobs) override {
    return target_->OptimizeQuery(query, design, knobs);
  }
  Result<double> CostQuery(const BoundQuery& query,
                           const PhysicalDesign& design,
                           const PlannerKnobs& knobs) override {
    return target_->CostQuery(query, design, knobs);
  }
  Result<std::vector<double>> CostBatch(std::span<const BoundQuery> queries,
                                        const PhysicalDesign& design,
                                        const PlannerKnobs& knobs) override {
    return target_->CostBatch(queries, design, knobs);
  }
  PartialCosts CostBatchPartial(std::span<const BoundQuery> queries,
                                const PhysicalDesign& design,
                                const PlannerKnobs& knobs) override {
    return target_->CostBatchPartial(queries, design, knobs);
  }
  JoinControlCapabilities join_control() const override {
    return target_->join_control();
  }
  uint64_t num_optimizer_calls() const override {
    return target_->num_optimizer_calls();
  }
  void ResetCallCount() override { target_->ResetCallCount(); }

 private:
  DbmsBackend* target_;
};

/// Everything the session loop produced in one run.
struct LoopOutcome {
  Status rec_status;
  IndexRecommendation rec;
  Status refine_status;
  IndexRecommendation refined;
  Status plan_status;
  DeploymentPlan plan;
};

/// Runs the canonical loop — SetWorkload, Recommend, Refine(pin the
/// first recommended index), PlanDeployment — with force_exact on.
LoopOutcome RunSessionLoop(DbmsBackend& backend, const Workload& w) {
  Designer designer(backend, ForceExactOptions());
  DesignSession session(designer);
  session.SetWorkload(w);
  LoopOutcome out;

  Result<IndexRecommendation> rec = session.Recommend();
  out.rec_status = rec.ok() ? Status::OK() : rec.status();
  if (rec.ok()) out.rec = rec.value();

  ConstraintDelta delta;
  if (rec.ok() && !rec.value().indexes.empty()) {
    delta.pin.push_back(rec.value().indexes[0]);
  } else {
    delta.storage_budget_pages = 5000.0;
  }
  Result<IndexRecommendation> refined = session.Refine(delta);
  out.refine_status = refined.ok() ? Status::OK() : refined.status();
  if (refined.ok()) out.refined = refined.value();

  Result<DeploymentPlan> plan = session.PlanDeployment();
  out.plan_status = plan.ok() ? Status::OK() : plan.status();
  if (plan.ok()) out.plan = plan.value();
  return out;
}

void ExpectRecEqual(const IndexRecommendation& got,
                    const IndexRecommendation& want, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.indexes, want.indexes);
  // EXPECT_EQ on doubles on purpose: the claim is BIT-identical, not
  // merely close.
  EXPECT_EQ(got.base_cost, want.base_cost);
  EXPECT_EQ(got.recommended_cost, want.recommended_cost);
  EXPECT_EQ(got.per_query_cost, want.per_query_cost);
  EXPECT_EQ(got.total_size_pages, want.total_size_pages);
  EXPECT_FALSE(got.degraded.degraded);
}

void ExpectPlanEqual(const DeploymentPlan& got, const DeploymentPlan& want) {
  EXPECT_EQ(got.indexes, want.indexes);
  EXPECT_EQ(got.edges, want.edges);
  EXPECT_EQ(got.clusters, want.clusters);
  ASSERT_EQ(got.schedule.steps.size(), want.schedule.steps.size());
  for (size_t i = 0; i < got.schedule.steps.size(); ++i) {
    EXPECT_EQ(got.schedule.steps[i].index, want.schedule.steps[i].index);
    EXPECT_EQ(got.schedule.steps[i].cluster, want.schedule.steps[i].cluster);
    EXPECT_EQ(got.schedule.steps[i].cost_after,
              want.schedule.steps[i].cost_after);
  }
  EXPECT_EQ(got.schedule.base_cost, want.schedule.base_cost);
  EXPECT_EQ(got.schedule.final_cost, want.schedule.final_cost);
  EXPECT_FALSE(got.degraded.degraded);
}

void ExpectLoopEqual(const LoopOutcome& got, const LoopOutcome& want) {
  ASSERT_TRUE(got.rec_status.ok()) << got.rec_status.ToString();
  ASSERT_TRUE(got.refine_status.ok()) << got.refine_status.ToString();
  ASSERT_TRUE(got.plan_status.ok()) << got.plan_status.ToString();
  ExpectRecEqual(got.rec, want.rec, "Recommend");
  ExpectRecEqual(got.refined, want.refined, "Refine");
  ExpectPlanEqual(got.plan, want.plan);
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SdssConfig cfg;
    cfg.photoobj_rows = 2000;
    cfg.seed = 31;
    db_ = std::make_unique<Database>(BuildSdssDatabase(cfg));
    workload_ = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 37);
  }

  /// Fault-free reference run over a plain in-memory backend (still
  /// with force_exact, so it costs through the same code path).
  LoopOutcome Baseline() {
    InMemoryBackend inner(*db_);
    return RunSessionLoop(inner, workload_);
  }

  std::unique_ptr<Database> db_;
  Workload workload_;
};

// ---------------------------------------------------------------------------
// Status taxonomy (satellite).

TEST(StatusTaxonomy, RetryableSplit) {
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_NE(Status::Unavailable("conn reset").ToString().find("unavailable"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Transparency + the seam is actually exercised.

TEST_F(FaultTest, FaultFreeDecoratorsAreTransparent) {
  LoopOutcome want = Baseline();

  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::None());
  ResilientBackend resilient(fault, RetryPolicy{});
  LoopOutcome got = RunSessionLoop(resilient, workload_);

  ExpectLoopEqual(got, want);
  // force_exact must route the loop through the seam — otherwise every
  // other assertion in this file is vacuous.
  EXPECT_GT(fault.counters().calls, 0u);
  ResilienceStats stats = resilient.stats();
  EXPECT_GT(stats.calls, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.giveups, 0u);
  EXPECT_EQ(stats.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Tentpole: recoverable fault plans leave the loop bit-identical.

TEST_F(FaultTest, SessionLoopBitIdenticalUnderRecoverableFaults) {
  LoopOutcome want = Baseline();

  struct Case {
    const char* label;
    FaultPlan plan;
    bool expect_injection;
  };
  const Case cases[] = {
      {"transient-5pct", FaultPlan::Transient(0xA11CE, 0.05, 1), false},
      {"transient-20pct-burst2", FaultPlan::Transient(0xB0B, 0.20, 2), false},
      {"transient-100pct-burst3", FaultPlan::Transient(0xCAFE, 1.0, 3), true},
      {"poison-50pct", FaultPlan::Poisoned(0xD00D, 0.5, 1), false},
      {"poison-100pct-burst2", FaultPlan::Poisoned(0xE66, 1.0, 2), true},
      {"batch-crash-50pct", FaultPlan::BatchCrash(0xBA7C4, 0.5, 1), false},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    InMemoryBackend inner(*db_);
    FaultInjectingBackend fault(inner, c.plan);
    RetryPolicy policy;
    policy.max_attempts = 4;  // > every burst above: recovery guaranteed
    ResilientBackend resilient(fault, policy);

    LoopOutcome got = RunSessionLoop(resilient, workload_);
    ExpectLoopEqual(got, want);

    ResilienceStats stats = resilient.stats();
    EXPECT_EQ(stats.giveups, 0u);
    EXPECT_EQ(stats.permanent_failures, 0u);
    if (c.expect_injection) {
      FaultCounters counters = fault.counters();
      EXPECT_GT(counters.transients + counters.poisons + counters.batch_crashes,
                0u);
      EXPECT_GT(stats.retries, 0u);
      EXPECT_GT(stats.recoveries, 0u);
    }
  }
}

TEST_F(FaultTest, FaultScheduleIsDeterministic) {
  FaultPlan plan = FaultPlan::Transient(0x5EED, 0.3, 2);
  RetryPolicy policy;
  policy.max_attempts = 4;

  InMemoryBackend inner1(*db_);
  FaultInjectingBackend fault1(inner1, plan);
  ResilientBackend res1(fault1, policy);
  LoopOutcome run1 = RunSessionLoop(res1, workload_);

  InMemoryBackend inner2(*db_);
  FaultInjectingBackend fault2(inner2, plan);
  ResilientBackend res2(fault2, policy);
  LoopOutcome run2 = RunSessionLoop(res2, workload_);

  ExpectLoopEqual(run1, run2);
  EXPECT_EQ(fault1.counters().transients, fault2.counters().transients);
  EXPECT_EQ(res1.stats().retries, res2.stats().retries);
  EXPECT_EQ(res1.stats().recoveries, res2.stats().recoveries);
}

// ---------------------------------------------------------------------------
// Latency / deadlines on the shared virtual clock.

TEST_F(FaultTest, LatencyIsHarmlessWithoutDeadline) {
  LoopOutcome want = Baseline();

  VirtualClock clock;
  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::Latency(0x7E4, 50, 0.0, 0),
                              &clock);
  ResilientBackend resilient(fault, RetryPolicy{}, &clock);
  LoopOutcome got = RunSessionLoop(resilient, workload_);

  ExpectLoopEqual(got, want);
  EXPECT_GT(fault.counters().latency_sleeps, 0u);
  EXPECT_GT(clock.NowMicros(), 0u);  // virtual time actually passed
  EXPECT_EQ(resilient.stats().deadline_exceeded, 0u);
}

TEST_F(FaultTest, DeadlineConvertsSlowCallsToDeadlineExceeded) {
  VirtualClock clock;
  InMemoryBackend inner(*db_);
  // Every call takes 500us of virtual time; the budget is 200us.
  FaultInjectingBackend fault(inner, FaultPlan::Latency(0x51, 500, 0.0, 0),
                              &clock);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.call_deadline_micros = 200;
  ResilientBackend resilient(fault, policy, &clock);

  Result<double> cost = resilient.CostQuery(workload_.queries[0],
                                            PhysicalDesign{}, PlannerKnobs{});
  ASSERT_FALSE(cost.ok());
  EXPECT_EQ(cost.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(cost.status().IsRetryable());
  EXPECT_GT(resilient.stats().deadline_exceeded, 0u);
}

// ---------------------------------------------------------------------------
// Poison rejection: garbage never crosses the seam.

TEST_F(FaultTest, PoisonedCostsAreRejectedThenRecovered) {
  InMemoryBackend inner(*db_);
  Result<double> clean = inner.CostQuery(workload_.queries[0],
                                         PhysicalDesign{}, PlannerKnobs{});
  ASSERT_TRUE(clean.ok());

  FaultInjectingBackend fault(inner, FaultPlan::Poisoned(0x9a7, 1.0, 1));
  RetryPolicy policy;
  policy.max_attempts = 3;
  ResilientBackend resilient(fault, policy);

  Result<double> cost = resilient.CostQuery(workload_.queries[0],
                                            PhysicalDesign{}, PlannerKnobs{});
  ASSERT_TRUE(cost.ok());
  EXPECT_TRUE(std::isfinite(cost.value()));
  EXPECT_GE(cost.value(), 0.0);
  EXPECT_EQ(cost.value(), clean.value());
  ResilienceStats stats = resilient.stats();
  EXPECT_GE(stats.poisoned_rejected, 1u);
  EXPECT_GE(stats.recoveries, 1u);
}

TEST_F(FaultTest, UnrecoverablePoisonBecomesCleanFailureNotGarbage) {
  InMemoryBackend inner(*db_);
  // Burst far beyond the retry budget: every attempt is poisoned.
  FaultInjectingBackend fault(inner, FaultPlan::Poisoned(0x9a8, 1.0, 100));
  RetryPolicy policy;
  policy.max_attempts = 2;
  ResilientBackend resilient(fault, policy);

  Result<double> cost = resilient.CostQuery(workload_.queries[0],
                                            PhysicalDesign{}, PlannerKnobs{});
  ASSERT_FALSE(cost.ok());  // an honest Status, never a NaN
  EXPECT_TRUE(cost.status().IsRetryable());
  ResilienceStats stats = resilient.stats();
  EXPECT_GE(stats.poisoned_rejected, 2u);
  EXPECT_EQ(stats.giveups, 1u);
}

// ---------------------------------------------------------------------------
// Partial-batch salvage.

TEST_F(FaultTest, PartialBatchSalvageRecoversFullBatch) {
  std::span<const BoundQuery> queries(workload_.queries.data(), 6);

  InMemoryBackend clean(*db_);
  Result<std::vector<double>> want =
      clean.CostBatch(queries, PhysicalDesign{}, PlannerKnobs{});
  ASSERT_TRUE(want.ok());

  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::BatchCrash(0xBA7C4, 1.0, 1));
  RetryPolicy policy;
  policy.max_attempts = 8;  // worst case: one crash per distinct tail key
  ResilientBackend resilient(fault, policy);

  Result<std::vector<double>> got =
      resilient.CostBatch(queries, PhysicalDesign{}, PlannerKnobs{});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), want.value());
  EXPECT_GE(fault.counters().batch_crashes, 1u);
  ResilienceStats stats = resilient.stats();
  EXPECT_GE(stats.retries, 1u);
  // The salvage counters fire whenever a crash point landed past the
  // first element (plan-dependent; asserted loosely on purpose).
  EXPECT_EQ(stats.results_salvaged > 0, stats.batches_salvaged > 0);
}

// ---------------------------------------------------------------------------
// Circuit breaker lifecycle.

TEST_F(FaultTest, BreakerOpensFastFailsThenProbesClosed) {
  VirtualClock clock;
  InMemoryBackend inner(*db_);
  // Every key fails its first two attempts, then succeeds.
  FaultInjectingBackend fault(inner, FaultPlan::Transient(0xB4EA, 1.0, 2));
  RetryPolicy policy;
  policy.max_attempts = 1;  // each logical call = one attempt
  policy.breaker_threshold = 2;
  policy.breaker_cooldown_micros = 1000;
  ResilientBackend resilient(fault, policy, &clock);

  const BoundQuery& q = workload_.queries[0];
  // Two straight giveups trip the breaker.
  EXPECT_FALSE(resilient.CostQuery(q, PhysicalDesign{}, PlannerKnobs{}).ok());
  EXPECT_EQ(resilient.breaker_state(), ResilientBackend::BreakerState::kClosed);
  EXPECT_FALSE(resilient.CostQuery(q, PhysicalDesign{}, PlannerKnobs{}).ok());
  EXPECT_EQ(resilient.breaker_state(), ResilientBackend::BreakerState::kOpen);
  EXPECT_EQ(resilient.stats().breaker_trips, 1u);

  // While open: fail fast, no inner attempt issued.
  uint64_t attempts_before = resilient.stats().attempts;
  Result<double> refused =
      resilient.CostQuery(q, PhysicalDesign{}, PlannerKnobs{});
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsRetryable());
  EXPECT_EQ(resilient.stats().attempts, attempts_before);
  EXPECT_EQ(resilient.stats().breaker_fast_fails, 1u);

  // After the cooldown the next call is the half-open probe; the fault
  // key is past its burst, so the probe succeeds and the breaker closes.
  clock.SleepMicros(2000);
  Result<double> probe = resilient.CostQuery(q, PhysicalDesign{},
                                             PlannerKnobs{});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(resilient.stats().breaker_probes, 1u);
  EXPECT_EQ(resilient.breaker_state(), ResilientBackend::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Hard outage: clean statuses everywhere, zero aborts.

TEST_F(FaultTest, OutageColdSessionReturnsCleanStatusEverywhere) {
  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::Outage());
  RetryPolicy policy;
  policy.max_attempts = 2;
  ResilientBackend resilient(fault, policy);

  Designer designer(resilient, ForceExactOptions());
  DesignSession session(designer);
  session.SetWorkload(workload_);

  Result<IndexRecommendation> rec = session.Recommend();
  ASSERT_FALSE(rec.ok());  // cold cache, no fallback: honest Status
  EXPECT_TRUE(rec.status().IsRetryable()) << rec.status().ToString();
  EXPECT_GT(fault.counters().calls, 0u);

  ConstraintDelta delta;
  delta.storage_budget_pages = 5000.0;
  Result<IndexRecommendation> refined = session.Refine(delta);
  ASSERT_FALSE(refined.ok());
  EXPECT_TRUE(refined.status().IsRetryable());

  Result<DeploymentPlan> plan = session.PlanDeployment();
  ASSERT_FALSE(plan.ok());  // nothing recommended yet
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);

  session.SaveSnapshot("down");
  Result<BenefitReport> cmp = session.CompareSnapshot("down", workload_);
  ASSERT_FALSE(cmp.ok());
  EXPECT_TRUE(cmp.status().IsRetryable());

  // Void API: must not throw, must not corrupt the session.
  Workload extra = GenerateWorkload(*db_, TemplateMix::PhaseJoins(), 3, 91);
  session.AddQueries(extra.queries);
  EXPECT_EQ(session.workload().size(), workload_.size() + 3);
}

TEST_F(FaultTest, WarmSessionDegradesToCachedAnswersAndRecovers) {
  InMemoryBackend good(*db_);
  FlipBackend flip(good);
  Designer designer(flip, ForceExactOptions());
  DesignSession session(designer);
  // Selections-only base workload so the join templates added below are
  // guaranteed to open NEW template classes (cold atoms -> backend).
  Workload base = GenerateWorkload(*db_, TemplateMix::PhaseSelections(), 8, 37);
  session.SetWorkload(base);

  Result<IndexRecommendation> rec1 = session.Recommend();
  ASSERT_TRUE(rec1.ok()) << rec1.status().ToString();
  ASSERT_FALSE(rec1.value().degraded.degraded);
  Result<DeploymentPlan> plan1 = session.PlanDeployment();
  ASSERT_TRUE(plan1.ok()) << plan1.status().ToString();

  // The backend goes down under the warm session.
  FaultInjectingBackend fault(good, FaultPlan::Outage());
  RetryPolicy policy;
  policy.max_attempts = 2;
  ResilientBackend down(fault, policy);
  flip.SetTarget(down);

  // New-template queries need fresh atoms -> backend -> failure. The
  // warm cache is dropped, the session survives.
  Workload extra = GenerateWorkload(*db_, TemplateMix::PhaseJoins(), 4, 91);
  size_t classes_before = session.num_template_classes();
  session.AddQueries(extra.queries);
  ASSERT_GT(session.num_template_classes(), classes_before)
      << "extension queries must open new template classes";
  EXPECT_FALSE(session.prepared());

  // Recommend degrades to the last certified answer, explicitly marked.
  Result<IndexRecommendation> rec2 = session.Recommend();
  ASSERT_TRUE(rec2.ok()) << rec2.status().ToString();
  EXPECT_TRUE(rec2.value().degraded.degraded);
  EXPECT_TRUE(rec2.value().degraded.cause.IsRetryable());
  EXPECT_EQ(rec2.value().degraded.fallback, "last-certified-recommendation");
  EXPECT_EQ(rec2.value().indexes, rec1.value().indexes);

  // PlanDeployment degrades to the cached plan, explicitly marked.
  Result<DeploymentPlan> plan2 = session.PlanDeployment();
  ASSERT_TRUE(plan2.ok()) << plan2.status().ToString();
  EXPECT_TRUE(plan2.value().degraded.degraded);
  EXPECT_EQ(plan2.value().degraded.fallback, "cached-deployment-plan");
  EXPECT_EQ(plan2.value().indexes, plan1.value().indexes);

  bool logged_degraded = false;
  for (const std::string& line : session.log()) {
    logged_degraded |= line.find("DEGRADED") != std::string::npos;
  }
  EXPECT_TRUE(logged_degraded);

  // The backend comes back: the next Recommend is fresh, not degraded.
  flip.SetTarget(good);
  Result<IndexRecommendation> rec3 = session.Recommend();
  ASSERT_TRUE(rec3.ok()) << rec3.status().ToString();
  EXPECT_FALSE(rec3.value().degraded.degraded);
}

TEST_F(FaultTest, ColtSurvivesOutageWithDegradedEpochs) {
  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::Outage());
  RetryPolicy policy;
  policy.max_attempts = 2;
  ResilientBackend resilient(fault, policy);

  ColtOptions copts;
  copts.epoch_length = 5;
  copts.inum.force_exact = true;
  ColtTuner tuner(resilient, copts);

  for (int i = 0; i < 10; ++i) {
    double cost = tuner.OnQuery(workload_.queries[i % workload_.size()]);
    EXPECT_TRUE(std::isfinite(cost));  // never NaN, never aborts
  }
  EXPECT_GT(tuner.backend_errors(), 0u);
  EXPECT_GE(tuner.degraded_epochs(), 1u);
  EXPECT_TRUE(tuner.last_backend_error().IsRetryable());
  EXPECT_EQ(tuner.cumulative_query_cost(), 0.0);  // no sentinel accounting
}

// ---------------------------------------------------------------------------
// ThreadPool first-error short-circuit (satellite).

TEST(FaultThreadPool, ParallelForCancelsRemainingWorkOnError) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::atomic<size_t> executed{0};
  Status caught;
  try {
    pool.ParallelFor(kN, 4, [&](size_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 0) {
        throw StatusException(Status::Unavailable("backend down"));
      }
    });
    FAIL() << "expected StatusException";
  } catch (const StatusException& e) {
    caught = e.status();
  }
  EXPECT_EQ(caught.code(), StatusCode::kUnavailable);
  // The error at index 0 cancels everything above it; only in-flight
  // claims may still run.
  EXPECT_LT(executed.load(), kN / 2);
}

// ---------------------------------------------------------------------------
// TraceBackend round-trip of a recovered faulty run (satellite).

TEST_F(FaultTest, TraceRoundTripOfRecoveredFaultyRun) {
  InMemoryBackend inner(*db_);
  FaultInjectingBackend fault(inner, FaultPlan::Transient(0x7124CE, 0.3, 2));
  RetryPolicy policy;
  policy.max_attempts = 4;
  ResilientBackend resilient(fault, policy);

  // Record above the resilience layer: the trace sees only recovered,
  // validated answers — faults are absorbed below the recorder.
  std::unique_ptr<TraceBackend> recorder = TraceBackend::Record(resilient);
  LoopOutcome recorded = RunSessionLoop(*recorder, workload_);
  ASSERT_TRUE(recorded.rec_status.ok());
  EXPECT_GT(recorder->num_recorded_costs(), 0u);

  Result<std::unique_ptr<TraceBackend>> replay =
      TraceBackend::FromJson(recorder->ToJson());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  LoopOutcome replayed = RunSessionLoop(*replay.value(), workload_);
  ExpectLoopEqual(replayed, recorded);
}

}  // namespace
}  // namespace dbdesign
