// End-to-end integration tests: the full designer pipeline against real
// execution. These are the repo's strongest guarantees — advisor claims
// are checked against materialized indexes and executed queries, not
// just against the cost model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/designer.h"
#include "core/report.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

namespace dbdesign {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SdssConfig cfg;
    cfg.photoobj_rows = 4000;
    cfg.seed = 97;
    db_ = std::make_unique<Database>(BuildSdssDatabase(cfg));
    workload_ = GenerateWorkload(*db_, TemplateMix::OfflineDefault(), 10, 3);
  }

  double DataPages() const {
    double pages = 0.0;
    for (TableId t = 0; t < db_->catalog().num_tables(); ++t) {
      pages += db_->stats(t).HeapPages(db_->catalog().table(t));
    }
    return pages;
  }

  std::unique_ptr<Database> db_;
  Workload workload_;
};

TEST_F(IntegrationTest, OfflinePipelineMaterializesAndExecutes) {
  Designer designer(*db_);
  OfflineRecommendation rec =
      designer.RecommendOffline(workload_, DataPages());
  ASSERT_FALSE(rec.indexes.indexes.empty());

  // Materialize every recommended index in schedule order.
  for (const ScheduleStep& step : rec.schedule.steps) {
    ASSERT_TRUE(db_->CreateIndex(step.index).ok())
        << step.index.Key();
  }

  // Every workload query must now execute correctly under the
  // materialized design, and its plan must use at least the design.
  WhatIfOptimizer whatif(*db_);
  Executor exec(*db_);
  int index_plans = 0;
  for (const BoundQuery& q : workload_.queries) {
    PlanResult plan = whatif.PlanUnder(q, db_->CurrentDesign());
    ASSERT_NE(plan.root, nullptr);
    auto rows = exec.Execute(q, *plan.root);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (q.limit < 0) {
      EXPECT_EQ(CanonicalizeResult(rows.value()),
                CanonicalizeResult(exec.ExecuteNaive(q)))
          << q.ToSql(db_->catalog());
    }
    std::function<bool(const PlanNode&)> uses_index =
        [&](const PlanNode& n) {
          if (n.index.has_value()) return true;
          for (const auto& c : n.children) {
            if (uses_index(*c)) return true;
          }
          return false;
        };
    index_plans += uses_index(*plan.root);
  }
  // A recommendation this strong must actually change most plans.
  EXPECT_GE(index_plans, static_cast<int>(workload_.size()) / 2);
}

TEST_F(IntegrationTest, AdvisorCostClaimsMatchExactOptimizer) {
  // CoPhy's recommended_cost is produced via INUM atoms; the exact
  // optimizer must agree under the materialized design.
  CoPhyOptions opts;
  opts.storage_budget_pages = DataPages();
  CoPhyAdvisor advisor(*db_, CostParams{}, opts);
  IndexRecommendation rec = advisor.Recommend(workload_);

  PhysicalDesign design;
  for (const IndexDef& idx : rec.indexes) design.AddIndex(idx);
  WhatIfOptimizer exact(*db_);
  double exact_cost = exact.WorkloadCostUnder(workload_, design);
  EXPECT_NEAR(exact_cost / rec.recommended_cost, 1.0, 0.05)
      << "advisor claim " << rec.recommended_cost << " vs optimizer "
      << exact_cost;
}

TEST_F(IntegrationTest, ScheduleMarginalsSumToTotalBenefit) {
  Designer designer(*db_);
  OfflineRecommendation rec =
      designer.RecommendOffline(workload_, DataPages());
  double sum = 0.0;
  for (const ScheduleStep& s : rec.schedule.steps) {
    sum += s.marginal_benefit;
    EXPECT_GE(s.marginal_benefit, -1e-6)
        << "adding an index must never hurt";
  }
  EXPECT_NEAR(sum, rec.schedule.base_cost - rec.schedule.final_cost, 1e-6);
}

TEST_F(IntegrationTest, ColtConvergesToOfflineRecommendationQuality) {
  // Feed a stationary workload long enough and COLT's configuration
  // should capture a large share of what offline tuning achieves with
  // single-column candidates.
  ColtOptions copts;
  copts.epoch_length = 20;
  ColtTuner tuner(*db_, CostParams{}, copts);
  Rng rng(7);
  std::vector<BoundQuery> stream;
  for (int i = 0; i < 200; ++i) {
    BoundQuery q = GenerateSdssQuery(*db_, SdssTemplate::kConeSearch, rng);
    q.id = i;
    stream.push_back(q);
  }
  for (const BoundQuery& q : stream) tuner.OnQuery(q);

  // Offline: best single-column design for the same stream.
  Workload w;
  for (const BoundQuery& q : stream) w.Add(q);
  CandidateOptions single;
  single.max_key_columns = 1;
  single.covering_candidates = false;
  GreedyOptions gopts;
  gopts.candidates = single;
  GreedyAdvisor greedy(*db_, CostParams{}, gopts);
  GreedyResult offline = greedy.Recommend(w);

  InumCostModel oracle(*db_);
  double colt_cost = oracle.WorkloadCost(w, tuner.current_design());
  PhysicalDesign offline_design;
  for (const IndexDef& i : offline.indexes) offline_design.AddIndex(i);
  double offline_cost = oracle.WorkloadCost(w, offline_design);
  double base = oracle.WorkloadCost(w, PhysicalDesign{});

  double colt_share = (base - colt_cost) / std::max(1.0, base - offline_cost);
  EXPECT_GE(colt_share, 0.6)
      << "COLT captured only " << colt_share * 100
      << "% of the offline single-column benefit";
}

TEST_F(IntegrationTest, WhatIfSessionNeverMutatesDatabase) {
  Designer designer(*db_);
  size_t indexes_before = db_->MaterializedIndexes().size();
  TableId photo = db_->catalog().FindTable(kPhotoObj);
  const TableDef& def = db_->catalog().table(photo);

  designer.whatif().CreateHypotheticalIndex(
      IndexDef{photo, {def.FindColumn("ra")}, false});
  designer.EvaluateDesign(workload_,
                          designer.whatif().hypothetical_design());
  designer.RecommendOffline(workload_, DataPages());
  designer.AnalyzeInteractions(
      workload_, designer.whatif().hypothetical_design().indexes());

  EXPECT_EQ(db_->MaterializedIndexes().size(), indexes_before)
      << "advisors must be read-only on the database";
  TableId spec = db_->catalog().FindTable(kSpecObj);
  EXPECT_EQ(db_->data(spec).NumRows(), 800u);
}

TEST_F(IntegrationTest, PartitionRecommendationConsistentWithWhatIf) {
  AutoPartAdvisor autopart(*db_);
  PartitionRecommendation rec = autopart.Recommend(workload_);
  // Re-evaluate the recommended partitioning through the independent
  // what-if path; improvements must agree.
  WhatIfOptimizer whatif(*db_);
  double base = whatif.WorkloadCostUnder(workload_, PhysicalDesign{});
  double with_parts = whatif.WorkloadCostUnder(workload_, rec.design);
  EXPECT_NEAR(with_parts / rec.final_cost, 1.0, 0.05);
  EXPECT_NEAR(base / rec.base_cost, 1.0, 0.05);
}

TEST_F(IntegrationTest, ReportsRenderForFullPipeline) {
  Designer designer(*db_);
  OfflineRecommendation rec =
      designer.RecommendOffline(workload_, DataPages());
  std::string text =
      RenderOfflineRecommendation(db_->catalog(), *db_, workload_, rec);
  // Every section must be present.
  for (const char* needle :
       {"Suggested indexes", "Suggested partitions",
        "Materialization schedule", "combined design cost"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  BenefitReport report = designer.EvaluateDesign(workload_, rec.combined);
  std::string panel = RenderBenefitPanel(db_->catalog(), workload_, report);
  EXPECT_NE(panel.find("average workload benefit"), std::string::npos);
}

}  // namespace
}  // namespace dbdesign
