// Seeded-violation corpus for determinism_lint self-tests.
// Every hazard below MUST be flagged; lint_selftest.py asserts the exact
// rule fires on the exact line.  This file is never compiled.
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace dbdesign {

struct Report {
  std::vector<std::string> lines;
};

// unordered-iteration: hash-table order leaks into an ordered report.
Report BuildReport(const std::unordered_map<std::string, double>& costs) {
  Report r;
  for (const auto& [name, cost] : costs) {  // VIOLATION unordered-iteration
    r.lines.push_back(name + ": " + std::to_string(cost));
  }
  return r;
}

// unsanctioned-random: naked rand() instead of the seeded util/rng Rng.
int PickVictim(int n) {
  return rand() % n;  // VIOLATION unsanctioned-random
}

// wall-clock without justification.
double Elapsed() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // VIOLATION wall-clock
      .count();
}

// pointer-keyed-order: address order differs per run.
struct Node {};
using NodeRank = std::map<Node*, int>;  // VIOLATION pointer-keyed-order

// unannotated-mutex (a): raw std::mutex invisible to the analysis.
class RawLocked {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // VIOLATION unannotated-mutex
    ++count_;
  }

 private:
  std::mutex mu_;  // VIOLATION unannotated-mutex
  int count_ = 0;
};

// unannotated-mutex (b): wrapper Mutex member guarding nothing visible.
class UncheckedLocked {
 private:
  Mutex mu_;  // VIOLATION unannotated-mutex (no DBD_GUARDED_BY references it)
  int count_ = 0;
};

// bare-assert: vanishes under NDEBUG (the default build).
int Half(int x) {
  assert(x % 2 == 0);  // VIOLATION bare-assert
  return x / 2;
}

// unsanctioned-retry (a): raw sleep bypasses the Clock seam.
void NapBetweenAttempts() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // VIOLATION unsanctioned-retry
}

// unsanctioned-retry (b): a retry loop outside the resilience layer.
bool CallWithHomegrownRetries(int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {  // VIOLATION unsanctioned-retry
    // issue the call, maybe break...
  }
  return false;
}

// NOLINT without a justification is itself a finding.
int PickOther(int n) {
  return rand() % n;  // NOLINT(determinism)
}

}  // namespace dbdesign
