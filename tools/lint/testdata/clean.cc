// Clean corpus for determinism_lint self-tests: every pattern here is
// the sanctioned counterpart of a violation in violations.cc and MUST
// produce zero findings.  This file is never compiled.
#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace dbdesign {

struct Report {
  std::vector<std::string> lines;
};

// Unordered iteration is fine when the sink is sorted before anyone
// can observe hash-table order.
Report BuildReport(const std::unordered_map<std::string, double>& costs) {
  Report r;
  for (const auto& [name, cost] : costs) {
    r.lines.push_back(name + ": " + std::to_string(cost));
  }
  std::sort(r.lines.begin(), r.lines.end());
  return r;
}

// Sanctioned randomness: the seeded util/rng Rng.
int PickVictim(Rng& rng, int n) {
  return rng.UniformInt(0, n - 1);
}

// Wall-clock read with a justification: accepted.
double Elapsed() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // NOLINT(determinism): telemetry only; never feeds results
                 .time_since_epoch())
      .count();
}

// Ordered container keyed by value, not address.
using NameRank = std::map<std::string, int>;

// Annotated Mutex with visible guard coverage.
class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ DBD_GUARDED_BY(mu_) = 0;
};

// Always-on invariant instead of a bare assert.
int Half(int x) {
  DBD_CHECK_EQ(x % 2, 0);
  return x / 2;
}

}  // namespace dbdesign
