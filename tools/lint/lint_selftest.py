#!/usr/bin/env python3
"""Self-test for determinism_lint.py.

Runs the linter over the seeded-violation corpus and asserts every
expected (rule, line-marker) pair fires, then over the clean corpus and
asserts zero findings.  Registered with ctest as lint.selftest so a
regression in the linter itself fails CI the same way a regression in
the library would.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "determinism_lint.py")
TESTDATA = os.path.join(HERE, "testdata")


def run_linter(path):
    proc = subprocess.run(
        [sys.executable, LINTER, path],
        capture_output=True, text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = re.match(r"(.+):(\d+): \[([\w-]+)\]", line)
        if m:
            findings.append((int(m.group(2)), m.group(3)))
    return proc.returncode, findings


def expected_violations(path):
    """Lines marked `VIOLATION <rule>` must be flagged with that rule.
    Lines carrying a bare NOLINT(determinism) must be flagged too."""
    expected = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = re.search(r"VIOLATION ([\w-]+)", line)
            if m:
                expected.append((lineno, m.group(1)))
            elif re.search(r"NOLINT\(determinism\)\s*$", line):
                expected.append((lineno, None))  # any rule; justification missing
    return expected


def main():
    failures = []

    # --- Seeded violations: every marker must fire. ---
    vpath = os.path.join(TESTDATA, "violations.cc")
    rc, findings = run_linter(vpath)
    if rc != 1:
        failures.append(f"violations.cc: expected exit 1, got {rc}")
    flagged = set(findings)
    flagged_lines = {line for line, _ in findings}
    for lineno, rule in expected_violations(vpath):
        if rule is None:
            if lineno not in flagged_lines:
                failures.append(
                    f"violations.cc:{lineno}: bare NOLINT(determinism) "
                    "was not flagged")
        elif (lineno, rule) not in flagged:
            failures.append(
                f"violations.cc:{lineno}: expected [{rule}] was not flagged")

    # Everything flagged must correspond to a marker (no false positives
    # in our own corpus).
    marker_lines = {l for l, _ in expected_violations(vpath)}
    for lineno, rule in findings:
        if lineno not in marker_lines:
            failures.append(
                f"violations.cc:{lineno}: unexpected [{rule}] finding "
                "(no VIOLATION marker on that line)")

    # --- Clean corpus: zero findings. ---
    cpath = os.path.join(TESTDATA, "clean.cc")
    rc, findings = run_linter(cpath)
    if rc != 0 or findings:
        failures.append(
            f"clean.cc: expected exit 0 with no findings, got exit {rc} "
            f"with {findings}")

    # --- --list-rules exits 0 and names every rule id used above. ---
    proc = subprocess.run(
        [sys.executable, LINTER, "--list-rules"],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        failures.append(f"--list-rules: expected exit 0, got {proc.returncode}")
    for rule in ("unordered-iteration", "unsanctioned-random", "wall-clock",
                 "pointer-keyed-order", "unannotated-mutex", "bare-assert",
                 "unsanctioned-retry"):
        if rule not in proc.stdout:
            failures.append(f"--list-rules output is missing '{rule}'")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("lint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
