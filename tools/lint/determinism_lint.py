#!/usr/bin/env python3
"""Repo-specific determinism & thread-safety linter for dbdesign.

The library's headline guarantee is that recommend/refine/deploy results
are bit-identical at any thread count and on any platform.  The classic
regressions are not exotic: someone iterates an unordered_map into a
report, calls rand() in a sampling loop, keys an ordered map by pointer,
or adds a mutex without annotating what it protects.  This linter walks
C++ sources and flags exactly those hazards:

  unordered-iteration   iterating an unordered_{map,set,multimap,multiset}
                        while appending to an ordered sink (push_back /
                        emplace_back / Append / operator+=) with no
                        std::sort / std::stable_sort of the sink nearby.
                        Hash-table iteration order is implementation-
                        defined; letting it reach a result, report or
                        JSON document makes output platform-dependent.
  unsanctioned-random   rand / srand / random / drand48 / std::random_device
                        / std::mt19937 outside util/rng.* — the seeded
                        util/rng Rng is the only sanctioned randomness.
  wall-clock            steady_clock/system_clock/high_resolution_clock
                        ::now(), time(), gettimeofday(), clock() —
                        wall-clock reads inside cost/recommend paths make
                        results timing-dependent.  Telemetry-only reads
                        get a NOLINT with justification.
  pointer-keyed-order   std::map / std::set keyed by a pointer type, or
                        std::less<T*>: address order changes run to run.
  unannotated-mutex     (a) raw std::mutex / std::lock_guard /
                        std::unique_lock / std::condition_variable
                        outside util/thread_annotations.h — invisible to
                        clang Thread Safety Analysis; use the annotated
                        Mutex / MutexLock / CondVar wrappers.
                        (b) a Mutex member that no DBD_GUARDED_BY /
                        DBD_PT_GUARDED_BY / DBD_REQUIRES in the same file
                        ever references — a lock that provably guards
                        nothing the analysis can check.
  bare-assert           assert( — the default RelWithDebInfo build
                        defines NDEBUG, so a bare assert checks nothing
                        in the build users run.  Use DBD_CHECK (always
                        on) or DBD_DCHECK (debug) from util/logging.h.
  unsanctioned-retry    (a) raw sleeps (std::this_thread::sleep_for /
                        sleep_until, usleep, nanosleep, sleep) anywhere
                        in src/ — sleeping must go through the Clock
                        seam (util/clock.h) so virtual time keeps runs
                        deterministic; (b) retry loops (for/while over
                        an attempt/retry/backoff counter) outside
                        backend/resilient_backend.* — ResilientBackend
                        is the single place allowed to loop on a backend
                        error, so retry amplification and backoff stay
                        centrally budgeted and deterministic.

Escape hatch: a finding's line may carry

    // NOLINT(determinism): <justification>

The justification is mandatory; a bare NOLINT(determinism) is itself a
finding.  Suppressions are per-line and should say WHY the hazard is not
one here (e.g. "wall-clock telemetry only, never feeds results").

Usage:
    determinism_lint.py [paths...]      # default: src/ next to the repo root
    determinism_lint.py --list-rules
Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import os
import re
import sys

RULES = {
    "unordered-iteration":
        "unordered-container iteration feeding an ordered sink without a sort",
    "unsanctioned-random":
        "randomness source other than the seeded util/rng Rng",
    "wall-clock":
        "wall-clock read inside a cost/recommend path",
    "pointer-keyed-order":
        "ordered container keyed by pointer (address order is per-run)",
    "unannotated-mutex":
        "mutex invisible to or unchecked by thread safety analysis",
    "bare-assert":
        "bare assert() is a no-op in the NDEBUG build; use DBD_CHECK/DBD_DCHECK",
    "unsanctioned-retry":
        "raw sleep or retry loop outside the resilience layer "
        "(backend/resilient_backend.* is the only sanctioned retrier)",
}

CPP_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

# Files exempt from specific rules (path suffix match, '/'-normalized).
RANDOM_EXEMPT = ("util/rng.h", "util/rng.cc")
MUTEX_WRAPPER = ("util/thread_annotations.h",)
RETRY_EXEMPT = ("backend/resilient_backend.h", "backend/resilient_backend.cc")

NOLINT_RE = re.compile(r"//\s*NOLINT\(determinism\)(?::\s*(\S.*))?")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{]*?>\s*[&*]?\s*(\w+)\s*"
    r"(?:[;={(),]|DBD_)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*[*&]?(\w+)\s*\)")
ITER_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin|equal_range)\s*\(")
APPEND_RE = re.compile(
    r"\b(\w+)(?:\.\w+)*\s*\.\s*(?:push_back|emplace_back|emplace|insert|"
    r"Append)\s*\(|\b(\w+)\s*\+=")
SORT_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")

RANDOM_RE = re.compile(
    r"\b(?:rand|srand|random|drand48|lrand48)\s*\(|std::random_device|"
    r"std::mt19937|std::default_random_engine|std::uniform_int_distribution|"
    r"std::uniform_real_distribution")
WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b|"
    r"\bgettimeofday\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0|\))|\bclock\s*\(\s*\)")
POINTER_KEY_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*|"
    r"std::less\s*<\s*(?:const\s+)?[\w:]+\s*\*")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;")
GUARD_REF_RE = re.compile(
    r"DBD_(?:PT_)?GUARDED_BY\s*\(\s*(\w+)\s*\)|"
    r"DBD_REQUIRES\s*\(\s*([\w,\s]+)\)|DBD_ACQUIRE\s*\(\s*(\w+)\s*\)|"
    r"DBD_RELEASE\s*\(\s*(\w+)\s*\)")
ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")
RAW_SLEEP_RE = re.compile(
    r"std::this_thread::sleep_(?:for|until)|\busleep\s*\(|"
    r"\bnanosleep\s*\(|(?<![\w:])sleep\s*\(")
RETRY_LOOP_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:attempt|attempts|retry|retries|"
    r"backoff|num_tries)\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines):
    """Returns lines with comments and string literals blanked out (same
    length preserved is not required — matching runs per stripped line),
    plus the raw lines for NOLINT extraction."""
    stripped = []
    in_block = False
    for raw in lines:
        out = []
        i = 0
        n = len(raw)
        in_string = None
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if in_string:
                if c == "\\":
                    i += 2
                    continue
                if c == in_string:
                    in_string = None
                i += 1
                continue
            if raw.startswith("//", i):
                break
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                in_string = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        stripped.append("".join(out))
    return stripped


def path_matches(path, suffixes):
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(s) for s in suffixes)


def lint_file(path, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        findings.append(Finding(path, 0, "io", f"cannot read: {e}"))
        return

    code = strip_comments_and_strings(raw_lines)

    # Per-line suppression state: None = no NOLINT, "" = missing
    # justification, non-empty = justified.
    suppression = []
    for raw in raw_lines:
        m = NOLINT_RE.search(raw)
        if m is None:
            suppression.append(None)
        else:
            suppression.append(m.group(1) or "")

    def report(lineno, rule, message):
        sup = suppression[lineno - 1]
        if sup is None:
            findings.append(Finding(path, lineno, rule, message))
        elif sup == "":
            findings.append(Finding(
                path, lineno, rule,
                "NOLINT(determinism) requires a justification string "
                "('// NOLINT(determinism): <why this is safe>')"))
        # justified suppression: accepted.

    # --- Collect unordered-container variable names (whole file) ---
    unordered_names = set()
    for line in code:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))

    # --- Collect Mutex members and guard references (whole file) ---
    mutex_members = {}  # name -> first declaration line
    guard_refs = set()
    for lineno, line in enumerate(code, 1):
        m = MUTEX_MEMBER_RE.match(line)
        if m and m.group(1) not in mutex_members:
            mutex_members[m.group(1)] = lineno
        for g in GUARD_REF_RE.finditer(line):
            for group in g.groups():
                if group:
                    for name in re.split(r"[,\s]+", group):
                        if name:
                            guard_refs.add(name)

    # --- Line rules ---
    for lineno, line in enumerate(code, 1):
        if not path_matches(path, RANDOM_EXEMPT):
            if RANDOM_RE.search(line):
                report(lineno, "unsanctioned-random",
                       "use the seeded util/rng Rng — any other randomness "
                       "source breaks bit-identical reproducibility")
        if WALL_CLOCK_RE.search(line):
            report(lineno, "wall-clock",
                   "wall-clock reads make results timing-dependent; if this "
                   "is telemetry that never feeds a result, say so in a "
                   "NOLINT justification")
        if POINTER_KEY_RE.search(line):
            report(lineno, "pointer-keyed-order",
                   "ordered container keyed by pointer: iteration order "
                   "follows allocation addresses, which differ per run")
        if not path_matches(path, MUTEX_WRAPPER):
            if RAW_MUTEX_RE.search(line):
                report(lineno, "unannotated-mutex",
                       "raw std synchronization primitive is invisible to "
                       "thread safety analysis; use Mutex/MutexLock/CondVar "
                       "from util/thread_annotations.h")
        if ASSERT_RE.search(line) and "static_assert" not in line:
            report(lineno, "bare-assert",
                   "bare assert() vanishes under NDEBUG (the default "
                   "RelWithDebInfo build); use DBD_CHECK or DBD_DCHECK")
        if RAW_SLEEP_RE.search(line):
            report(lineno, "unsanctioned-retry",
                   "raw sleep bypasses the Clock seam (util/clock.h); "
                   "virtual time is what keeps backoff and deadlines "
                   "deterministic")
        if not path_matches(path, RETRY_EXEMPT):
            if RETRY_LOOP_RE.search(line):
                report(lineno, "unsanctioned-retry",
                       "retry loop outside backend/resilient_backend.*: "
                       "ResilientBackend is the single sanctioned retrier "
                       "(centralized budget, deterministic backoff)")

    # --- Unordered iteration feeding an ordered sink ---
    WINDOW = 8
    for lineno, line in enumerate(code, 1):
        iter_var = None
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in unordered_names:
            iter_var = m.group(1)
        else:
            m = ITER_CALL_RE.search(line)
            if m and m.group(1) in unordered_names:
                iter_var = m.group(1)
        if iter_var is None:
            continue
        window = code[lineno - 1:lineno - 1 + WINDOW]
        appends = any(APPEND_RE.search(w) for w in window)
        sorted_after = any(SORT_RE.search(w) for w in window)
        if appends and not sorted_after:
            report(lineno, "unordered-iteration",
                   f"iterating unordered container '{iter_var}' into an "
                   "ordered sink without sorting: hash-table order is "
                   "implementation-defined and will differ across platforms")

    # --- Mutex members never referenced by an annotation ---
    for name, lineno in mutex_members.items():
        if name not in guard_refs:
            report(lineno, "unannotated-mutex",
                   f"Mutex member '{name}' has no DBD_GUARDED_BY / "
                   "DBD_REQUIRES coverage in this file: annotate the fields "
                   "it protects so the analysis can check them")


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(root, n))
        else:
            print(f"determinism_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def main(argv):
    args = argv[1:]
    if "--list-rules" in args:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0
    if not args:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        args = [os.path.join(repo_root, "src")]

    findings = []
    files = collect_files(args)
    for f in files:
        lint_file(f, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({len(files)} file(s))", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
