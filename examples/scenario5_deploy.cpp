// Demonstration scenario #5: interaction-aware deployment scheduling.
//
// The paper's interactive loop does not end at "here is the optimal
// design": the DBA still has to materialize it, and the order in which
// indexes are built determines how fast the benefit accrues — index
// interactions make an index's marginal benefit depend on what is
// already built (§3.5). PlanDeployment() is the session stage for that
// last mile: it computes the pairwise degree-of-interaction matrix over
// the compressed template-class workload, partitions the interaction
// graph into independent clusters, and emits a constraint-aware greedy
// materialization schedule — pinned indexes first, storage budget
// respected at every intermediate step, and everything priced from the
// cached INUM atoms: on a warm session the whole stage makes ZERO new
// backend optimizer calls.
//
//   $ ./build/scenario5_deploy
//   $ DBDESIGN_TRACE_QUERIES=2000 ./build/scenario5_deploy   # smaller run

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/designer.h"
#include "core/session.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int TraceQueries() {
  if (const char* env = std::getenv("DBDESIGN_TRACE_QUERIES")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 10000;
}

void PrintCurve(const char* name, const MaterializationSchedule& sched) {
  std::printf("  %-24s |", name);
  for (size_t k = 1; k <= sched.steps.size(); ++k) {
    std::printf(" %8.0f", sched.BenefitAtPrefix(k));
  }
  std::printf(" | area %.1f\n", sched.BenefitArea());
}

}  // namespace

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  std::printf("scenario 5 — deployment scheduling (the loop's last mile)\n\n");
  Database db = BuildSdssDatabase(config);
  Designer designer(db);
  DesignSession session(designer);

  // --- Step 1: recommend for a compressed trace ---
  int n = TraceQueries();
  session.SetWorkload(GenerateWorkload(db, TemplateMix::OfflineDefault(), n, 7));
  auto t0 = std::chrono::steady_clock::now();
  auto rec = session.Recommend();
  double rec_ms = MillisSince(t0);
  if (!rec.ok()) {
    std::printf("error: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("Step 1 — Recommend() on a %d-query trace (%zu template "
              "classes): %.1f ms, %zu indexes, cost %.1f -> %.1f\n",
              n, session.num_template_classes(), rec_ms,
              rec.value().indexes.size(), rec.value().base_cost,
              rec.value().recommended_cost);

  // --- Step 2: plan the deployment on the warm session ---
  uint64_t calls0 = session.backend_optimizer_calls();
  uint64_t pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  auto plan = session.PlanDeployment();
  double plan_ms = MillisSince(t0);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  const DeploymentPlan& p = plan.value();
  std::printf("\nStep 2 — PlanDeployment(): %.1f ms, %llu new backend "
              "optimizer calls, %llu new INUM populations (everything is a "
              "cached-atom reprice)\n",
              plan_ms,
              static_cast<unsigned long long>(
                  session.backend_optimizer_calls() - calls0),
              static_cast<unsigned long long>(session.inum_populate_count() -
                                              pops0));
  std::printf("  %zu interacting pairs across %zu clusters\n",
              p.edges.size(), p.clusters.size());
  std::printf("%s", p.Graph(db.catalog()).ToAscii().c_str());
  std::printf("\n  materialization schedule (pins first, budget at every "
              "step):\n");
  for (size_t k = 0; k < p.schedule.steps.size(); ++k) {
    const ScheduleStep& s = p.schedule.steps[k];
    std::printf("    %zu. %-44s %6.0f pages (cum %6.0f)  benefit %10.1f  "
                "cluster %d%s\n",
                k + 1, s.index.DisplayName(db.catalog()).c_str(),
                s.build_pages, s.cumulative_pages, s.marginal_benefit,
                s.cluster, s.pinned ? "  [pinned]" : "");
  }

  // --- Step 3: why the order matters — benefit curves ---
  MaterializationScheduler scheduler(designer.inum());
  Workload classes;
  for (const TemplateClass& cls : session.template_classes()) {
    classes.Add(cls.representative, cls.weight);
  }
  MaterializationSchedule solo =
      scheduler.SoloBenefitOrder(classes, p.indexes);
  std::vector<int> reversed;
  for (int i = static_cast<int>(p.indexes.size()) - 1; i >= 0; --i) {
    reversed.push_back(i);
  }
  MaterializationSchedule worst =
      scheduler.FixedOrder(classes, p.indexes, reversed);
  std::printf("\nStep 3 — cumulative benefit standing after each build:\n");
  PrintCurve("greedy (interaction)", p.schedule);
  PrintCurve("solo-benefit order", solo);
  PrintCurve("fixed (reverse) order", worst);
  std::printf("  every order ends at the same final cost — only the path "
              "(and the DBA's wait) differs\n");

  // --- Step 4: refine, then replan — the schedule is reused outright ---
  TableId photo = db.catalog().FindTable(kPhotoObj);
  ConstraintDelta delta;
  delta.veto.push_back(
      IndexDef{photo, {db.catalog().table(photo).FindColumn("rerun")}, false});
  auto refined = session.Refine(delta);
  if (!refined.ok()) {
    std::printf("error: %s\n", refined.status().ToString().c_str());
    return 1;
  }
  calls0 = session.backend_optimizer_calls();
  t0 = std::chrono::steady_clock::now();
  auto again = session.PlanDeployment();
  double replan_ms = MillisSince(t0);
  if (!again.ok()) {
    std::printf("error: %s\n", again.status().ToString().c_str());
    return 1;
  }
  std::printf("\nStep 4 — veto an unused index, Refine(), PlanDeployment() "
              "again: %.2f ms, %llu new backend calls, schedule %s, "
              "%zu/%zu DoI rows from cache\n",
              replan_ms,
              static_cast<unsigned long long>(
                  session.backend_optimizer_calls() - calls0),
              again.value().schedule_reused ? "reused outright" : "rebuilt",
              again.value().doi_rows_reused,
              again.value().doi_rows_reused + again.value().doi_rows_computed);
  return 0;
}
