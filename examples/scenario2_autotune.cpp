// Demonstration scenario #2 (paper §4): automatic index + partition
// recommendation with a materialization schedule.
//
// "The user provides the query workload, the original physical schema
//  and size constraints. Then, the tool recommends a set of indexes and
//  partitions which maximize the performance. ... In the case of
//  indexes, a materialization schedule becomes available."
//
//   $ ./build/examples/scenario2_autotune

#include <cstdio>

#include "autopart/autopart.h"
#include "core/designer.h"
#include "core/report.h"
#include "exec/executor.h"
#include "workload/queries.h"
#include "util/str.h"
#include "workload/sdss.h"

using namespace dbdesign;

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  Database db = BuildSdssDatabase(config);
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 16, /*seed=*/1);

  double data_pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    data_pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  std::printf("database: %.0f heap pages (%s); storage budget: 1x data\n",
              data_pages, FormatBytes(data_pages * kPageSizeBytes).c_str());

  Designer designer(db);
  OfflineRecommendation rec = designer.RecommendOffline(workload, data_pages);
  std::printf("\n%s\n",
              RenderOfflineRecommendation(db.catalog(), db, workload, rec)
                  .c_str());

  // The user accepts: physically create the suggested indexes in
  // schedule order and execute a workload query at each step to show
  // real plans lighting up.
  std::printf("Materializing indexes in schedule order...\n");
  Executor exec(db);
  const BoundQuery& probe = workload.queries[0];
  for (size_t step = 0; step < rec.schedule.steps.size(); ++step) {
    const IndexDef& idx = rec.schedule.steps[step].index;
    Status s = db.CreateIndex(idx);
    std::printf("  built %-40s %s\n", idx.DisplayName(db.catalog()).c_str(),
                s.ok() ? "ok" : s.ToString().c_str());
  }
  // Re-plan a probe query against the now-materialized design and run it.
  WhatIfOptimizer whatif(db);
  PlanResult plan = whatif.Plan(probe);
  auto rows = exec.Execute(probe, *plan.root);
  std::printf("\nprobe query: %s\n", probe.ToSql(db.catalog()).c_str());
  std::printf("%s\n", plan.root->ToString(db.catalog(), probe).c_str());
  if (rows.ok()) {
    std::printf("=> %zu rows (verified against naive evaluation: %s)\n",
                rows.value().size(),
                CanonicalizeResult(rows.value()) ==
                        CanonicalizeResult(exec.ExecuteNaive(probe))
                    ? "match"
                    : "MISMATCH");
  }

  // Rewritten queries for the suggested partitions.
  if (rec.combined.HasPartitions()) {
    std::printf("\nRewritten queries for the suggested partitions:\n");
    AutoPartAdvisor autopart(db);
    for (size_t i = 0; i < 3 && i < workload.size(); ++i) {
      std::printf("  q%zu: %s\n", i,
                  autopart.RewriteQuery(workload.queries[i], rec.combined)
                      .c_str());
    }
  }
  return 0;
}
