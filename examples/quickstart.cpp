// Quickstart: build a database, ask what-if questions, get an index
// recommendation.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's core loop in ~80 lines:
//   1. generate the SDSS-like database,
//   2. parse + bind a SQL query,
//   3. EXPLAIN it, then EXPLAIN it again under a hypothetical index,
//   4. let CoPhy recommend indexes for a small workload.

#include <cstdio>

#include "backend/inmemory_backend.h"
#include "core/designer.h"
#include "core/report.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "util/str.h"
#include "workload/sdss.h"

using namespace dbdesign;

int main() {
  // 1. A 20k-row SDSS-like database with ANALYZE statistics.
  SdssConfig config;
  config.photoobj_rows = 20000;
  Database db = BuildSdssDatabase(config);
  std::printf("Loaded %d tables; photoobj has %zu rows\n",
              db.catalog().num_tables(),
              db.data(db.catalog().FindTable(kPhotoObj)).NumRows());

  // 2. Parse and bind a query.
  auto query = ParseAndBind(
      db.catalog(),
      "SELECT objid, ra, dec FROM photoobj "
      "WHERE ra BETWEEN 120 AND 121 AND dec BETWEEN -5 AND 5");
  if (!query.ok()) {
    std::printf("bind failed: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 3. What-if: cost before and after a hypothetical index. The
  // designer talks to the engine only through the DbmsBackend seam;
  // swap InMemoryBackend for your own implementation to port it.
  InMemoryBackend backend(db);
  WhatIfOptimizer whatif(backend);
  PlanResult before = whatif.Plan(query.value());
  std::printf("\n--- plan without indexes (cost %.1f) ---\n%s\n",
              before.cost,
              before.root->ToString(db.catalog(), query.value()).c_str());

  TableId photo = db.catalog().FindTable(kPhotoObj);
  IndexDef ra_dec{photo,
                  {db.catalog().table(photo).FindColumn("ra"),
                   db.catalog().table(photo).FindColumn("dec")},
                  false};
  whatif.CreateHypotheticalIndex(ra_dec);
  PlanResult after = whatif.Plan(query.value());
  std::printf("--- plan with hypothetical %s (cost %.1f, %.1fx faster) ---\n%s\n",
              ra_dec.DisplayName(db.catalog()).c_str(), after.cost,
              before.cost / after.cost,
              after.root->ToString(db.catalog(), query.value()).c_str());
  std::printf("hypothetical index size: %s (never assumed zero)\n",
              FormatBytes(whatif.HypotheticalIndexSize(ra_dec).total_pages() *
                          kPageSizeBytes)
                  .c_str());

  // 4. Automatic recommendation for a 12-query workload.
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, /*seed=*/7);
  Designer designer(backend);
  double data_pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    data_pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  OfflineRecommendation rec = designer.RecommendOffline(workload, data_pages);
  std::printf("\n%s\n",
              RenderOfflineRecommendation(db.catalog(), backend, workload, rec)
                  .c_str());
  return 0;
}
