// Demonstration scenario #3 (paper §4): continuous tuning under
// workload drift.
//
// "This component monitors the behavior of the system when the workload
//  changes and suggests changes to the set of indexes. Our tool
//  presents the change in system's performance accruing from adopting
//  the new suggested indexes."
//
//   $ ./build/examples/scenario3_online

#include <cstdio>

#include "colt/colt.h"
#include "core/designer.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  Database db = BuildSdssDatabase(config);

  // Three workload phases: selections -> joins -> aggregates.
  const char* phase_names[] = {"selections", "joins", "aggregates"};
  std::vector<TemplateMix> phases = {TemplateMix::PhaseSelections(),
                                     TemplateMix::PhaseJoins(),
                                     TemplateMix::PhaseAggregates()};
  const int per_phase = 150;
  std::vector<BoundQuery> stream =
      GenerateDriftingStream(db, phases, per_phase, /*seed=*/99);

  ColtOptions opts;
  opts.epoch_length = 25;
  ColtTuner tuner(db, CostParams{}, opts);
  InumCostModel oracle(db);  // for the no-tuning baseline

  double untuned = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i % per_phase == 0) {
      std::printf("--- phase %zu: %s ---\n", i / per_phase + 1,
                  phase_names[i / per_phase]);
    }
    tuner.OnQuery(stream[i]);
    untuned += oracle.Cost(stream[i], PhysicalDesign{});

    // Surface COLT events as they happen (the demo's alert messages).
    static size_t reported = 0;
    while (reported < tuner.events().size()) {
      const ColtEvent& e = tuner.events()[reported++];
      const char* kind = e.type == ColtEvent::Type::kBuild   ? "BUILD"
                         : e.type == ColtEvent::Type::kDrop  ? "DROP "
                                                             : "ALERT";
      std::printf("  [epoch %2d] %s %-40s (benefit/epoch %.1f)\n", e.epoch,
                  kind, e.index.DisplayName(db.catalog()).c_str(),
                  e.expected_benefit_per_epoch);
    }
  }

  std::printf("\nper-epoch summary:\n");
  std::printf("  epoch   observed     baseline   indexes  whatif-calls\n");
  for (const ColtEpochReport& e : tuner.epochs()) {
    std::printf("  %5d  %9.1f   %10.1f   %7d  %12d\n", e.epoch,
                e.observed_cost, e.baseline_cost, e.config_size,
                e.whatif_calls);
  }

  std::printf("\ncumulative cost (queries + builds): %.1f\n",
              tuner.cumulative_cost());
  std::printf("cumulative cost without tuning:     %.1f\n", untuned);
  std::printf("online tuning saved %.1f%%\n",
              100.0 * (1.0 - tuner.cumulative_cost() / untuned));
  std::printf("final configuration: %zu indexes\n",
              tuner.current_design().indexes().size());
  for (const IndexDef& idx : tuner.current_design().indexes()) {
    std::printf("  %s\n", idx.DisplayName(db.catalog()).c_str());
  }
  return 0;
}
