// dbdesign_cli: an interactive shell over the Designer — the portable
// equivalent of the demo's GUI. The DBA can explain queries, create and
// drop what-if structures, toggle join knobs, ask for recommendations,
// inspect interactions, and materialize indexes.
//
//   $ ./build/examples/dbdesign_cli            # interactive
//   $ echo "recommend 1.0" | ./build/examples/dbdesign_cli
//
// Commands (also via `help`):
//   sql <SELECT ...>        explain + run a query
//   whatif index t c1[,c2]  create a hypothetical index
//   drop index t c1[,c2]    drop a hypothetical index
//   knobs [name on|off]     show / set join knobs
//   eval                    benefit panel of the hypothetical design
//   recommend [budget_x]    CoPhy+AutoPart+schedule (budget x data size)
//   interactions            doi graph over the hypothetical indexes
//   build t c1[,c2]         physically build an index
//   tables                  list schema
//   quit

#include <cstdio>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "core/designer.h"
#include "core/report.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "util/str.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

namespace {

struct Shell {
  Database db;
  Designer designer;
  Workload workload;
  Executor exec;

  explicit Shell(Database d)
      : db(std::move(d)),
        designer(db),
        workload(GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, 7)),
        exec(db) {}

  Result<IndexDef> ParseIndexSpec(const std::string& table,
                                  const std::string& cols) {
    TableId t = db.catalog().FindTable(table);
    if (t == kInvalidTableId) {
      return Status::NotFound("table '" + table + "'");
    }
    IndexDef idx;
    idx.table = t;
    for (const std::string& c : StrSplit(cols, ',')) {
      ColumnId col = db.catalog().table(t).FindColumn(c);
      if (col == kInvalidColumnId) {
        return Status::NotFound("column '" + c + "' in " + table);
      }
      idx.columns.push_back(col);
    }
    if (idx.columns.empty()) {
      return Status::InvalidArgument("no columns given");
    }
    return idx;
  }

  void CmdSql(const std::string& sql) {
    auto q = ParseAndBind(db.catalog(), sql);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    PlanResult plan = designer.whatif().Plan(q.value());
    std::printf("%s\n", plan.root->ToString(db.catalog(), q.value()).c_str());
    auto rows = exec.Execute(q.value(), *plan.root);
    if (rows.ok()) {
      size_t shown = 0;
      for (const Row& r : rows.value()) {
        if (shown++ >= 10) break;
        std::string line;
        for (const Value& v : r) line += v.ToString() + "  ";
        std::printf("  %s\n", line.c_str());
      }
      std::printf("(%zu rows)\n", rows.value().size());
    } else {
      std::printf("(plan not executable: %s)\n",
                  rows.status().ToString().c_str());
    }
  }

  void CmdKnobs(std::istringstream& in) {
    std::string name;
    std::string state;
    in >> name >> state;
    PlannerKnobs& k = designer.whatif().knobs();
    struct Entry {
      const char* name;
      bool* flag;
    } entries[] = {
        {"seqscan", &k.enable_seqscan},
        {"indexscan", &k.enable_indexscan},
        {"indexonlyscan", &k.enable_indexonlyscan},
        {"nestloop", &k.enable_nestloop},
        {"indexnestloop", &k.enable_indexnestloop},
        {"hashjoin", &k.enable_hashjoin},
        {"mergejoin", &k.enable_mergejoin},
        {"sort", &k.enable_sort},
    };
    if (!name.empty()) {
      for (Entry& e : entries) {
        if (name == e.name) *e.flag = (state != "off");
      }
    }
    for (Entry& e : entries) {
      std::printf("  enable_%-14s %s\n", e.name, *e.flag ? "on" : "off");
    }
  }

  void CmdEval() {
    BenefitReport report = designer.EvaluateDesign(
        workload, designer.whatif().hypothetical_design());
    std::printf("%s", RenderBenefitPanel(db.catalog(), workload, report)
                          .c_str());
  }

  void CmdRecommend(std::istringstream& in) {
    double factor = 1.0;
    in >> factor;
    double pages = 0.0;
    for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
      pages += db.stats(t).HeapPages(db.catalog().table(t));
    }
    OfflineRecommendation rec =
        designer.RecommendOffline(workload, factor * pages);
    std::printf("%s", RenderOfflineRecommendation(db.catalog(), db, workload,
                                                  rec)
                          .c_str());
  }

  void CmdInteractions() {
    const auto& indexes = designer.whatif().hypothetical_design().indexes();
    if (indexes.size() < 2) {
      std::printf("create at least two what-if indexes first\n");
      return;
    }
    InteractionGraph graph = designer.AnalyzeInteractions(workload, indexes);
    std::printf("%s", graph.ToAscii().c_str());
  }

  void CmdTables() {
    for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
      const TableDef& def = db.catalog().table(t);
      std::printf("  %s (%zu rows, %.0f pages):", def.name().c_str(),
                  db.data(t).NumRows(),
                  db.stats(t).HeapPages(def));
      for (const ColumnDef& c : def.columns()) {
        std::printf(" %s", c.name.c_str());
      }
      std::printf("\n");
    }
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "  sql <SELECT ...> | whatif index <t> <c1[,c2]> | drop index "
          "<t> <cols>\n  knobs [name on|off] | eval | recommend [x] | "
          "interactions | build <t> <cols> | tables | quit\n");
    } else if (cmd == "sql") {
      std::string rest;
      std::getline(in, rest);
      CmdSql(rest);
    } else if (cmd == "whatif" || cmd == "drop" || cmd == "build") {
      std::string kind;
      std::string table;
      std::string cols;
      if (cmd == "build") {
        in >> table >> cols;
        kind = "index";
      } else {
        in >> kind >> table >> cols;
      }
      if (kind != "index") {
        std::printf("only 'index' specs are supported here\n");
        return true;
      }
      auto idx = ParseIndexSpec(table, cols);
      if (!idx.ok()) {
        std::printf("error: %s\n", idx.status().ToString().c_str());
        return true;
      }
      Status s;
      if (cmd == "whatif") {
        s = designer.whatif().CreateHypotheticalIndex(idx.value());
        if (s.ok()) {
          std::printf("created hypothetical %s (%s)\n",
                      idx.value().DisplayName(db.catalog()).c_str(),
                      FormatBytes(designer.whatif()
                                      .HypotheticalIndexSize(idx.value())
                                      .total_pages() *
                                  kPageSizeBytes)
                          .c_str());
        }
      } else if (cmd == "drop") {
        s = designer.whatif().DropHypotheticalIndex(idx.value());
      } else {
        s = db.CreateIndex(idx.value());
        if (s.ok()) {
          std::printf("built %s\n",
                      idx.value().DisplayName(db.catalog()).c_str());
        }
      }
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
    } else if (cmd == "knobs") {
      CmdKnobs(in);
    } else if (cmd == "eval") {
      CmdEval();
    } else if (cmd == "recommend") {
      CmdRecommend(in);
    } else if (cmd == "interactions") {
      CmdInteractions();
    } else if (cmd == "tables") {
      CmdTables();
    } else {
      std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
    }
    return true;
  }
};

}  // namespace

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  std::printf("dbdesign interactive designer — loading SDSS-like data...\n");
  Shell shell(BuildSdssDatabase(config));
  std::printf("ready. 12-query workload loaded; type `help`.\n");

  std::string line;
  while (true) {
    std::printf("dbdesign> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Dispatch(line)) break;
  }
  std::printf("bye\n");
  return 0;
}
