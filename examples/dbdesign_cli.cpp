// dbdesign_cli: an interactive shell over the Designer — the portable
// equivalent of the demo's GUI, now built around the constraint-driven
// refinement loop: the tool recommends, the DBA pins/vetoes/caps, and
// `refine` re-solves incrementally (zero new optimizer calls after a
// constraints-only edit).
//
// The shell is multi-session: named DesignSessions live in a
// TuningServer over a shared atom substrate, so `open`ing a second
// session on the warm schema skips the INUM populate entirely and two
// sessions can explore different constraint stories side by side
// (switching costs nothing — each session keeps its own workload,
// constraints, pending edits, history, and snapshots).
//
//   $ ./build/dbdesign_cli                       # interactive
//   $ printf 'recommend 1.0\nveto photoobj ra\nrefine\n' | ./build/dbdesign_cli
//
// Commands (also via `help`):
//   sql <SELECT ...>        explain + run a query
//   whatif index t c1[,c2]  create a hypothetical index
//   drop index t c1[,c2]    drop a hypothetical index
//   knobs [name on|off]     show / set join knobs
//   eval                    benefit panel of the hypothetical design
//   recommend [budget_x]    constraint-aware recommendation (budget x data)
//   refine                  re-solve after constraint edits (incremental)
//   pin|unpin t c1[,c2]     force an index into / out of the pin set
//   veto|unveto t c1[,c2]   forbid / re-allow an index
//   vetocol t col           forbid any index touching a column
//   cap t n | uncap t       limit recommended indexes on a table
//   budget <pages|off>      set / clear the storage budget
//   constraints             show the DBA constraint state
//   save|load <file>        persist / resume the current session (JSON)
//   undo | redo             step the design history
//   snapshot|restore <name> named design snapshots
//   offline [budget_x]      full CoPhy+AutoPart+schedule pipeline
//   deploy                  plan the materialization of the last
//                           recommendation (constraint-aware greedy
//                           schedule + interaction clusters; zero new
//                           optimizer calls on a warm session)
//   interactions            doi graph over the last recommendation
//                           (falls back to the hypothetical indexes)
//   build t c1[,c2]         physically build an index
//   classes                 the session's template-class table
//   open <name>             open + switch to a new named session
//   switch <name>           switch to an open session
//   close <name>            close a session
//   sessions                list sessions (current marked, atom stats)
//   tables | log | quit

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "backend/inmemory_backend.h"
#include "core/designer.h"
#include "core/report.h"
#include "core/session.h"
#include "exec/executor.h"
#include "server/server.h"
#include "sql/binder.h"
#include "util/str.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

namespace {

constexpr const char* kSchemaName = "sdss";

struct Shell {
  Database db;
  InMemoryBackend backend;
  TuningServer server;
  Executor exec;
  std::string current;
  /// Staged constraint edits, per session (applied by `refine`).
  std::map<std::string, ConstraintDelta> pending_map;

  explicit Shell(Database d) : db(std::move(d)), backend(db), exec(db) {
    Status st = server.RegisterSchema(kSchemaName, backend);
    DBD_CHECK(st.ok());
    OpenNamedSession("main");
  }

  bool OpenNamedSession(const std::string& name) {
    Status st = server.OpenSession(name, kSchemaName);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return false;
    }
    st = server.WithSession(name, [&](DesignSession& session) {
      session.SetWorkload(
          GenerateWorkload(db, TemplateMix::OfflineDefault(), 12, 7));
    });
    DBD_CHECK(st.ok());
    current = name;
    return true;
  }

  double DataPages() const {
    double pages = 0.0;
    for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
      pages += db.stats(t).HeapPages(db.catalog().table(t));
    }
    return pages;
  }

  Result<IndexDef> ParseIndexSpec(const std::string& table,
                                  const std::string& cols) {
    TableId t = db.catalog().FindTable(table);
    if (t == kInvalidTableId) {
      return Status::NotFound("table '" + table + "'");
    }
    IndexDef idx;
    idx.table = t;
    for (const std::string& c : StrSplit(cols, ',')) {
      ColumnId col = db.catalog().table(t).FindColumn(c);
      if (col == kInvalidColumnId) {
        return Status::NotFound("column '" + c + "' in " + table);
      }
      idx.columns.push_back(col);
    }
    if (idx.columns.empty()) {
      return Status::InvalidArgument("no columns given");
    }
    return idx;
  }

  void CmdSql(DesignSession& session, const std::string& sql) {
    auto q = ParseAndBind(db.catalog(), sql);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    PlanResult plan = session.designer().whatif().Plan(q.value());
    std::printf("%s\n", plan.root->ToString(db.catalog(), q.value()).c_str());
    auto rows = exec.Execute(q.value(), *plan.root);
    if (rows.ok()) {
      size_t shown = 0;
      for (const Row& r : rows.value()) {
        if (shown++ >= 10) break;
        std::string line;
        for (const Value& v : r) line += v.ToString() + "  ";
        std::printf("  %s\n", line.c_str());
      }
      std::printf("(%zu rows)\n", rows.value().size());
    } else {
      std::printf("(plan not executable: %s)\n",
                  rows.status().ToString().c_str());
    }
  }

  void CmdKnobs(DesignSession& session, std::istringstream& in) {
    std::string name;
    std::string state;
    in >> name >> state;
    PlannerKnobs& k = session.designer().whatif().knobs();
    struct Entry {
      const char* name;
      bool* flag;
    } entries[] = {
        {"seqscan", &k.enable_seqscan},
        {"indexscan", &k.enable_indexscan},
        {"indexonlyscan", &k.enable_indexonlyscan},
        {"nestloop", &k.enable_nestloop},
        {"indexnestloop", &k.enable_indexnestloop},
        {"hashjoin", &k.enable_hashjoin},
        {"mergejoin", &k.enable_mergejoin},
        {"sort", &k.enable_sort},
    };
    if (!name.empty()) {
      for (Entry& e : entries) {
        if (name == e.name) *e.flag = (state != "off");
      }
    }
    for (Entry& e : entries) {
      std::printf("  enable_%-14s %s\n", e.name, *e.flag ? "on" : "off");
    }
  }

  void CmdEval(DesignSession& session) {
    BenefitReport report = session.designer().EvaluateDesign(
        session.workload(), session.designer().whatif().hypothetical_design());
    std::printf("%s", RenderBenefitPanel(db.catalog(), session.workload(),
                                         report)
                          .c_str());
  }

  /// The refinement loop driver behind both `recommend` and `refine`.
  void Solve(DesignSession& session, ConstraintDelta& pending,
             const char* verb) {
    uint64_t calls0 = session.backend_optimizer_calls();
    uint64_t pops0 = session.inum_populate_count();
    auto t0 = std::chrono::steady_clock::now();
    Result<IndexRecommendation> rec = session.Refine(pending);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!rec.ok()) {
      std::printf("error: %s\n", rec.status().ToString().c_str());
      return;
    }
    pending = ConstraintDelta{};
    const IndexRecommendation& r = rec.value();
    std::printf("%s: %zu indexes, cost %.1f -> %.1f (%.1f%% better)\n", verb,
                r.indexes.size(), r.base_cost, r.recommended_cost,
                r.improvement() * 100.0);
    for (const IndexDef& idx : r.indexes) {
      const char* tag = session.constraints().IsPinned(idx) ? "  [pinned]" : "";
      std::printf("  %s%s\n", idx.DisplayName(db.catalog()).c_str(), tag);
    }
    for (const IndexDef& idx : r.infeasible_pins) {
      std::printf("  ! pinned %s does not fit the budget\n",
                  idx.DisplayName(db.catalog()).c_str());
    }
    std::printf(
        "  %.1f ms, %llu new optimizer calls, %llu new INUM populations\n",
        ms,
        static_cast<unsigned long long>(session.backend_optimizer_calls() -
                                        calls0),
        static_cast<unsigned long long>(session.inum_populate_count() -
                                        pops0));
  }

  void CmdConstraints(DesignSession& session, const ConstraintDelta& pending) {
    const DesignConstraints& c = session.constraints();
    std::printf("constraints:\n");
    for (const IndexDef& idx : c.pinned_indexes) {
      std::printf("  pin   %s\n", idx.DisplayName(db.catalog()).c_str());
    }
    for (const IndexDef& idx : c.vetoed_indexes) {
      std::printf("  veto  %s\n", idx.DisplayName(db.catalog()).c_str());
    }
    for (const ColumnRef& col : c.vetoed_columns) {
      std::printf("  veto column %s\n", col.DisplayName(db.catalog()).c_str());
    }
    for (const auto& [table, cap] : c.max_indexes_per_table) {
      std::printf("  cap   %s <= %d indexes\n",
                  db.catalog().table(table).name().c_str(), cap);
    }
    if (std::isfinite(c.storage_budget_pages)) {
      std::printf("  budget %.0f pages\n", c.storage_budget_pages);
    }
    if (!c.partitioning_enabled) std::printf("  partitioning disabled\n");
    if (c.unconstrained()) std::printf("  (unconstrained)\n");
    if (!pending.empty()) {
      std::printf("pending (apply with `refine`): %s\n",
                  pending.Describe(db.catalog()).c_str());
    }
  }

  void CmdOffline(DesignSession& session, std::istringstream& in) {
    double factor = 1.0;
    in >> factor;
    auto rec = session.designer().TryRecommendOffline(
        session.workload(), factor * DataPages(), session.constraints());
    if (!rec.ok()) {
      std::printf("error: %s\n", rec.status().ToString().c_str());
      return;
    }
    std::printf("%s", RenderOfflineRecommendation(db.catalog(), db,
                                                  session.workload(),
                                                  rec.value())
                          .c_str());
  }

  void CmdInteractions(DesignSession& session) {
    // Prefer the session's deployment stage: the DoI graph over the
    // last recommendation, priced from cached atoms. Without a
    // recommendation, fall back to the hypothetical what-if indexes.
    if (session.last_recommendation() != nullptr) {
      auto plan = session.PlanDeployment();
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        return;
      }
      InteractionGraph graph = plan.value().Graph(db.catalog());
      std::printf("%s", graph.ToAscii().c_str());
      std::printf("clusters:");
      for (const auto& cluster : plan.value().clusters) {
        std::printf(" {");
        for (size_t m = 0; m < cluster.size(); ++m) {
          std::printf("%s%d", m ? "," : "", cluster[m]);
        }
        std::printf("}");
      }
      std::printf("\n");
      return;
    }
    const auto& indexes =
        session.designer().whatif().hypothetical_design().indexes();
    if (indexes.size() < 2) {
      std::printf("recommend first, or create at least two what-if indexes\n");
      return;
    }
    InteractionGraph graph =
        session.designer().AnalyzeInteractions(session.workload(), indexes);
    std::printf("%s", graph.ToAscii().c_str());
  }

  void CmdDeploy(DesignSession& session) {
    if (session.last_recommendation() == nullptr) {
      std::printf("nothing to deploy: run `recommend` (or `refine`) first\n");
      return;
    }
    uint64_t calls0 = session.backend_optimizer_calls();
    uint64_t pops0 = session.inum_populate_count();
    auto t0 = std::chrono::steady_clock::now();
    auto plan = session.PlanDeployment();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    const DeploymentPlan& p = plan.value();
    const MaterializationSchedule& s = p.schedule;
    std::printf("deployment plan: %zu builds, cost %.1f -> %.1f, "
                "%zu interacting pairs, %zu clusters%s\n",
                s.steps.size(), s.base_cost, s.final_cost, p.edges.size(),
                p.clusters.size(),
                p.schedule_reused ? " (schedule reused)" : "");
    std::printf("  %-4s %-44s %9s %9s %12s %8s %s\n", "step", "index",
                "pages", "cum.pages", "benefit", "cluster", "");
    for (size_t k = 0; k < s.steps.size(); ++k) {
      const ScheduleStep& step = s.steps[k];
      std::printf("  %-4zu %-44s %9.0f %9.0f %12.1f %8d%s\n", k + 1,
                  step.index.DisplayName(db.catalog()).c_str(),
                  step.build_pages, step.cumulative_pages,
                  step.marginal_benefit, step.cluster,
                  step.pinned ? "  [pinned]" : "");
    }
    for (const IndexDef& idx : s.skipped) {
      std::printf("  !    %-44s skipped (vetoed or over budget)\n",
                  idx.DisplayName(db.catalog()).c_str());
    }
    std::printf(
        "  %.1f ms, %llu new optimizer calls, %llu new INUM populations, "
        "%zu/%zu DoI rows from cache\n",
        ms,
        static_cast<unsigned long long>(session.backend_optimizer_calls() -
                                        calls0),
        static_cast<unsigned long long>(session.inum_populate_count() - pops0),
        p.doi_rows_reused, p.doi_rows_reused + p.doi_rows_computed);
  }

  void CmdClasses(DesignSession& session) {
    const auto& classes = session.template_classes();
    if (classes.empty()) {
      std::printf("no workload loaded\n");
      return;
    }
    std::printf("%zu queries in %zu template classes:\n",
                session.workload().size(), classes.size());
    std::printf("  %-18s %10s %8s  %s\n", "signature", "weight", "count",
                "representative");
    for (const TemplateClass& cls : classes) {
      std::printf("  %016llx %10.1f %8zu  %s\n",
                  static_cast<unsigned long long>(cls.signature), cls.weight,
                  cls.count, cls.representative.ToSql(db.catalog()).c_str());
    }
  }

  void CmdTables() {
    for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
      const TableDef& def = db.catalog().table(t);
      std::printf("  %s (%zu rows, %.0f pages):", def.name().c_str(),
                  db.data(t).NumRows(),
                  db.stats(t).HeapPages(def));
      for (const ColumnDef& c : def.columns()) {
        std::printf(" %s", c.name.c_str());
      }
      std::printf("\n");
    }
  }

  void CmdSessions() {
    TuningServerStats stats = server.stats();
    std::printf("sessions on '%s' (store: %llu rows published, "
                "hit rate %.2f):\n",
                kSchemaName,
                static_cast<unsigned long long>(stats.atoms.publishes),
                stats.atoms.hit_rate());
    for (const std::string& id : server.SessionIds()) {
      auto atom_stats = server.SessionAtomStats(id);
      size_t queries = 0;
      Status st = server.WithSession(id, [&](DesignSession& session) {
        queries = session.workload().size();
      });
      std::printf("  %c %-16s %zu queries, %llu populates reused\n",
                  id == current ? '*' : ' ', id.c_str(),
                  st.ok() ? queries : 0,
                  static_cast<unsigned long long>(
                      atom_stats.ok() ? atom_stats.value().hits : 0));
    }
  }

  /// Server-level commands: session lifecycle lives outside the
  /// per-session lock.
  bool DispatchServer(const std::string& cmd, std::istringstream& in) {
    if (cmd == "open" || cmd == "switch" || cmd == "close") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("usage: %s <name>\n", cmd.c_str());
        return true;
      }
      if (cmd == "open") {
        if (OpenNamedSession(name)) {
          std::printf("opened session '%s' (now current)\n", name.c_str());
        }
      } else if (cmd == "switch") {
        if (!server.HasSession(name)) {
          std::printf("error: no session '%s' (try `sessions`)\n",
                      name.c_str());
        } else {
          current = name;
        }
      } else {
        Status st = server.CloseSession(name);
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          return true;
        }
        pending_map.erase(name);
        if (name == current) {
          auto ids = server.SessionIds();
          if (ids.empty()) {
            OpenNamedSession("main");
            std::printf("closed current session; opened fresh 'main'\n");
          } else {
            current = ids.front();
            std::printf("closed current session; switched to '%s'\n",
                        current.c_str());
          }
        }
      }
      return true;
    }
    if (cmd == "sessions") {
      CmdSessions();
      return true;
    }
    return false;
  }

  bool DispatchSession(DesignSession& session, const std::string& cmd,
                       std::istringstream& in) {
    ConstraintDelta& pending = pending_map[current];
    if (cmd == "help") {
      std::printf(
          "  sql <SELECT ...> | whatif index <t> <cols> | drop index <t> "
          "<cols> | knobs [name on|off]\n"
          "  recommend [x] | refine | pin/unpin <t> <cols> | veto/unveto <t> "
          "<cols> | vetocol <t> <col>\n"
          "  cap <t> <n> | uncap <t> | budget <pages|off> | constraints | "
          "save/load <file>\n"
          "  eval | undo | redo | snapshot/restore <name> | offline [x] | "
          "deploy | interactions | build <t> <cols>\n"
          "  open/switch/close <name> | sessions | classes | tables | log | "
          "quit\n");
    } else if (cmd == "sql") {
      std::string rest;
      std::getline(in, rest);
      CmdSql(session, rest);
    } else if (cmd == "whatif" || cmd == "drop" || cmd == "build") {
      std::string kind;
      std::string table;
      std::string cols;
      if (cmd == "build") {
        in >> table >> cols;
        kind = "index";
      } else {
        in >> kind >> table >> cols;
      }
      if (kind != "index") {
        std::printf("only 'index' specs are supported here\n");
        return true;
      }
      auto idx = ParseIndexSpec(table, cols);
      if (!idx.ok()) {
        std::printf("error: %s\n", idx.status().ToString().c_str());
        return true;
      }
      Status s;
      if (cmd == "whatif") {
        s = session.CreateIndex(idx.value());
        if (s.ok()) {
          std::printf("created hypothetical %s (%s)\n",
                      idx.value().DisplayName(db.catalog()).c_str(),
                      FormatBytes(session.designer()
                                      .whatif()
                                      .HypotheticalIndexSize(idx.value())
                                      .total_pages() *
                                  kPageSizeBytes)
                          .c_str());
        }
      } else if (cmd == "drop") {
        s = session.DropIndex(idx.value());
      } else {
        s = db.CreateIndex(idx.value());
        if (s.ok()) {
          std::printf("built %s\n",
                      idx.value().DisplayName(db.catalog()).c_str());
        }
      }
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
    } else if (cmd == "pin" || cmd == "unpin" || cmd == "veto" ||
               cmd == "unveto") {
      std::string table;
      std::string cols;
      in >> table >> cols;
      auto idx = ParseIndexSpec(table, cols);
      if (!idx.ok()) {
        std::printf("error: %s\n", idx.status().ToString().c_str());
        return true;
      }
      // unpin/unveto first cancel a matching edit still staged in the
      // pending delta (typo recovery); only then do they become real
      // unpin/unveto entries for the session's constraints.
      auto erase_staged = [](std::vector<IndexDef>* v, const IndexDef& i) {
        auto it = std::find(v->begin(), v->end(), i);
        if (it == v->end()) return false;
        v->erase(it);
        return true;
      };
      if (cmd == "pin") pending.pin.push_back(idx.value());
      if (cmd == "unpin" && !erase_staged(&pending.pin, idx.value())) {
        pending.unpin.push_back(idx.value());
      }
      if (cmd == "veto") pending.veto.push_back(idx.value());
      if (cmd == "unveto" && !erase_staged(&pending.veto, idx.value())) {
        pending.unveto.push_back(idx.value());
      }
      std::printf("pending: %s (apply with `refine`)\n",
                  pending.Describe(db.catalog()).c_str());
    } else if (cmd == "vetocol") {
      std::string table;
      std::string col;
      in >> table >> col;
      TableId t = db.catalog().FindTable(table);
      if (t == kInvalidTableId) {
        std::printf("error: table '%s' not found\n", table.c_str());
        return true;
      }
      ColumnId c = db.catalog().table(t).FindColumn(col);
      if (c == kInvalidColumnId) {
        std::printf("error: column '%s' not found\n", col.c_str());
        return true;
      }
      pending.veto_columns.push_back(ColumnRef{t, c});
      std::printf("pending: %s (apply with `refine`)\n",
                  pending.Describe(db.catalog()).c_str());
    } else if (cmd == "cap" || cmd == "uncap") {
      std::string table;
      int n = -1;
      in >> table;
      if (cmd == "cap" && (!(in >> n) || n < 0)) {
        std::printf("usage: cap <table> <n>  (n >= 0; use `uncap <table>` "
                    "to clear)\n");
        return true;
      }
      TableId t = db.catalog().FindTable(table);
      if (t == kInvalidTableId) {
        std::printf("error: table '%s' not found\n", table.c_str());
        return true;
      }
      pending.table_caps[t] = cmd == "cap" ? n : -1;
      std::printf("pending: %s (apply with `refine`)\n",
                  pending.Describe(db.catalog()).c_str());
    } else if (cmd == "budget") {
      std::string arg;
      in >> arg;
      if (arg == "off") {
        pending.storage_budget_pages =
            std::numeric_limits<double>::infinity();
      } else {
        char* end = nullptr;
        double pages = std::strtod(arg.c_str(), &end);
        if (arg.empty() || end == arg.c_str() || *end != '\0' ||
            pages < 0.0) {
          std::printf("usage: budget <pages|off>\n");
          return true;
        }
        pending.storage_budget_pages = pages;
      }
      std::printf("pending: %s (apply with `refine`)\n",
                  pending.Describe(db.catalog()).c_str());
    } else if (cmd == "knobs") {
      CmdKnobs(session, in);
    } else if (cmd == "constraints") {
      CmdConstraints(session, pending);
    } else if (cmd == "recommend") {
      double factor = 0.0;
      if (in >> factor && factor > 0.0) {
        pending.storage_budget_pages = factor * DataPages();
      } else if (!pending.storage_budget_pages.has_value() &&
                 !std::isfinite(
                     session.constraints().storage_budget_pages)) {
        // Pre-PR default: plain `recommend` budgets at 1.0x data size
        // rather than solving unconstrained.
        pending.storage_budget_pages = DataPages();
      }
      Solve(session, pending, "recommend");
    } else if (cmd == "refine") {
      Solve(session, pending, "refine");
    } else if (cmd == "save" || cmd == "load") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::printf("usage: %s <file>\n", cmd.c_str());
        return true;
      }
      Status s = cmd == "save" ? session.SaveToFile(path)
                               : session.LoadFromFile(path);
      if (s.ok()) {
        // Pending edits staged before a load refer to the old session.
        if (cmd == "load") pending = ConstraintDelta{};
        std::printf("%s %s (%zu queries, %zu snapshots)\n",
                    cmd == "save" ? "saved to" : "loaded from", path.c_str(),
                    session.workload().size(),
                    session.SnapshotNames().size());
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "undo") {
      std::printf(session.Undo() ? "undone\n" : "nothing to undo\n");
    } else if (cmd == "redo") {
      std::printf(session.Redo() ? "redone\n" : "nothing to redo\n");
    } else if (cmd == "snapshot" || cmd == "restore") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("usage: %s <name>\n", cmd.c_str());
        return true;
      }
      if (cmd == "snapshot") {
        session.SaveSnapshot(name);
        std::printf("saved snapshot '%s'\n", name.c_str());
      } else {
        Status s = session.RestoreSnapshot(name);
        if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "log") {
      for (const std::string& entry : session.log()) {
        std::printf("  %s\n", entry.c_str());
      }
    } else if (cmd == "eval") {
      CmdEval(session);
    } else if (cmd == "offline") {
      CmdOffline(session, in);
    } else if (cmd == "deploy") {
      CmdDeploy(session);
    } else if (cmd == "interactions") {
      CmdInteractions(session);
    } else if (cmd == "classes") {
      CmdClasses(session);
    } else if (cmd == "tables") {
      CmdTables();
    } else {
      std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
    }
    return true;
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (DispatchServer(cmd, in)) return true;
    bool keep = true;
    Status st = server.WithSession(current, [&](DesignSession& session) {
      keep = DispatchSession(session, cmd, in);
    });
    if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
    return keep;
  }
};

}  // namespace

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  std::printf("dbdesign interactive designer — loading SDSS-like data...\n");
  Shell shell(BuildSdssDatabase(config));
  std::printf("ready. 12-query workload loaded in session 'main'; "
              "type `help`.\n");

  std::string line;
  while (true) {
    std::printf("dbdesign[%s]> ", shell.current.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Dispatch(line)) break;
  }
  std::printf("bye\n");
  return 0;
}
