// Portability demo: the designer over the DbmsBackend seam.
//
// 1. Attach the designer to the in-memory engine through InMemoryBackend.
// 2. Record a what-if session into a JSON trace (TraceBackend).
// 3. Reload the trace and run the same session with NO engine behind it
//    — identical costs, served from the recording.
//
// Porting to a real DBMS follows the same shape: implement DbmsBackend
// for your engine, capture a trace, and the whole designer stack
// (what-if, INUM, CoPhy, AutoPart, COLT) runs unchanged.

#include <cstdio>

#include "backend/inmemory_backend.h"
#include "backend/trace_backend.h"
#include "core/designer.h"
#include "sql/binder.h"
#include "util/logging.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

int main() {
  SetLogLevel(LogLevel::kWarning);

  SdssConfig cfg;
  cfg.photoobj_rows = 10000;
  cfg.seed = 42;
  Database db = BuildSdssDatabase(cfg);
  Workload workload = GenerateWorkload(db, TemplateMix::OfflineDefault(), 8, 7);

  // --- 1. The engine-agnostic designer over the concrete engine ---
  InMemoryBackend engine(db);
  std::printf("backend: %s (%d tables)\n", engine.name().c_str(),
              engine.catalog().num_tables());

  // --- 2. Record a what-if session through a trace recorder ---
  auto recorder = TraceBackend::Record(engine);
  Designer designer(*recorder);

  TableId photo = engine.catalog().FindTable(kPhotoObj);
  IndexDef ra_dec{photo,
                  {engine.catalog().table(photo).FindColumn("ra"),
                   engine.catalog().table(photo).FindColumn("dec")},
                  false};
  PhysicalDesign candidate;
  candidate.AddIndex(ra_dec);

  BenefitReport live = designer.EvaluateDesign(workload, candidate);
  // One batched backend round-trip (recorded into the trace).
  double live_backend = designer.whatif().WorkloadCostUnder(workload, candidate);
  std::printf("live evaluation:   average benefit %.1f%% (cost %.1f -> %.1f; "
              "backend batch %.1f)\n",
              live.average_benefit() * 100.0, live.base_total, live.new_total,
              live_backend);

  const char* path = "/tmp/dbdesign_session.trace.json";
  Status saved = recorder->SaveToFile(path);
  std::printf("trace: %zu recorded cost calls -> %s (%s)\n",
              recorder->num_recorded_costs(), path,
              saved.ok() ? "saved" : saved.ToString().c_str());

  // --- 3. Replay: same designer code, no engine ---
  auto replay = TraceBackend::LoadFromFile(path);
  if (!replay.ok()) {
    std::printf("replay failed: %s\n", replay.status().ToString().c_str());
    return 1;
  }
  Designer offline(*replay.value());
  BenefitReport replayed = offline.EvaluateDesign(workload, candidate);
  double replay_backend =
      offline.whatif().WorkloadCostUnder(workload, candidate);
  std::printf("replay evaluation: average benefit %.1f%% (cost %.1f -> %.1f; "
              "backend batch %.1f)\n",
              replayed.average_benefit() * 100.0, replayed.base_total,
              replayed.new_total, replay_backend);

  bool identical = replayed.base_total == live.base_total &&
                   replayed.new_total == live.new_total &&
                   replay_backend == live_backend;
  std::printf("replay %s the live session.\n",
              identical ? "exactly reproduces" : "DIVERGES from");
  return identical ? 0 : 1;
}
