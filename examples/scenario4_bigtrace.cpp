// Demonstration scenario #4: production-scale traces through the
// template-class compression layer.
//
// The paper's designer must stay interactive on real traces, and real
// traces are huge but repetitive: an SDSS-style workload is a handful
// of query templates instantiated tens of thousands of times with
// different constants. DesignSession compresses the workload into
// template classes up front, so the whole costing pipeline — INUM
// populate, CoPhy atoms, weights — runs per class. A 100k-query trace
// recommends in roughly the time of its ~10-class compressed form, and
// appending another instance of a known template is a pure weight bump:
// the next Recommend() reuses the optimality certificate with zero new
// backend cost calls.
//
//   $ ./build/scenario4_bigtrace
//   $ DBDESIGN_TRACE_QUERIES=5000 ./build/scenario4_bigtrace   # smaller run

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/designer.h"
#include "core/session.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int TraceQueries() {
  if (const char* env = std::getenv("DBDESIGN_TRACE_QUERIES")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 100000;
}

}  // namespace

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  std::printf("scenario 4 — big-trace tuning (template compression)\n\n");
  Database db = BuildSdssDatabase(config);
  Designer designer(db);
  DesignSession session(designer);

  // --- Step 1: load a production-scale trace ---
  int n = TraceQueries();
  auto t0 = std::chrono::steady_clock::now();
  Workload trace = GenerateWorkload(db, TemplateMix::OfflineDefault(), n, 7);
  double gen_ms = MillisSince(t0);
  t0 = std::chrono::steady_clock::now();
  session.SetWorkload(trace);
  double set_ms = MillisSince(t0);
  std::printf("Step 1 — %d-query SDSS trace (generated in %.0f ms)\n", n,
              gen_ms);
  std::printf("  compressed to %zu template classes in %.1f ms:\n",
              session.num_template_classes(), set_ms);
  for (const TemplateClass& cls : session.template_classes()) {
    std::printf("    %016llx  weight %8.0f  %s\n",
                static_cast<unsigned long long>(cls.signature), cls.weight,
                cls.representative.ToSql(db.catalog()).c_str());
  }

  // --- Step 2: recommend over the compressed form ---
  double data_pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    data_pages += db.stats(t).HeapPages(db.catalog().table(t));
  }
  DesignConstraints constraints;
  constraints.storage_budget_pages = 0.5 * data_pages;
  session.SetConstraints(constraints);

  uint64_t calls0 = session.backend_optimizer_calls();
  uint64_t pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  auto rec = session.Recommend();
  double rec_ms = MillisSince(t0);
  if (!rec.ok()) {
    std::printf("error: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nStep 2 — Recommend() on all %d queries: %.1f ms\n", n,
              rec_ms);
  std::printf("  %zu indexes, cost %.1f -> %.1f (%.1f%% better)\n",
              rec.value().indexes.size(), rec.value().base_cost,
              rec.value().recommended_cost,
              rec.value().improvement() * 100.0);
  std::printf("  %llu INUM populations, %llu backend optimizer calls — "
              "proportional to %zu classes, not %d queries\n",
              static_cast<unsigned long long>(session.inum_populate_count() -
                                              pops0),
              static_cast<unsigned long long>(
                  session.backend_optimizer_calls() - calls0),
              session.num_template_classes(), n);

  // --- Step 3: the trace grows — same template, new constants ---
  std::printf("\nStep 3 — 1000 more instances of a known template arrive\n");
  std::vector<BoundQuery> more(1000, trace.queries[0]);
  calls0 = session.backend_optimizer_calls();
  pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  session.AddQueries(more);
  auto rec2 = session.Recommend();
  double bump_ms = MillisSince(t0);
  if (!rec2.ok()) {
    std::printf("error: %s\n", rec2.status().ToString().c_str());
    return 1;
  }
  std::printf("  AddQueries + Recommend: %.2f ms (%.0fx faster than the "
              "initial solve), %llu new backend cost calls, %llu new "
              "populations\n",
              bump_ms, rec_ms / (bump_ms > 0.001 ? bump_ms : 0.001),
              static_cast<unsigned long long>(
                  session.backend_optimizer_calls() - calls0),
              static_cast<unsigned long long>(session.inum_populate_count() -
                                              pops0));
  std::printf("  a same-template append is a pure weight bump: the "
              "optimality certificate survives, so the answer is instant\n");
  return 0;
}
