// Demonstration scenario #1 (paper §4): interactive design with
// constraint-driven incremental refinement.
//
// "The user provides the query workload and the original physical
//  schema" — then the loop the demo is named for: the designer
//  proposes, the DBA reacts (pins an index she trusts, vetoes one she
//  doesn't, tightens the budget), and the tool re-recommends fast
//  enough to feel interactive. The speed comes from INUM reuse: the
//  session keeps the cost cache and the CoPhy atom matrix, so a
//  constraints-only refinement re-solves the BIP with ZERO new
//  optimizer calls.
//
//   $ ./build/scenario1_interactive

#include <chrono>
#include <cstdio>

#include "core/designer.h"
#include "core/report.h"
#include "core/session.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void PrintRecommendation(const Catalog& catalog, const DesignSession& session,
                         const IndexRecommendation& rec, double ms,
                         uint64_t new_calls, uint64_t new_populates) {
  std::printf("  -> %zu indexes, cost %.1f -> %.1f (%.1f%% better)\n",
              rec.indexes.size(), rec.base_cost, rec.recommended_cost,
              rec.improvement() * 100.0);
  for (const IndexDef& idx : rec.indexes) {
    std::printf("     %s%s\n", idx.DisplayName(catalog).c_str(),
                session.constraints().IsPinned(idx) ? "  [pinned]" : "");
  }
  for (const IndexDef& idx : rec.infeasible_pins) {
    std::printf("     ! pinned %s does not fit the budget\n",
                idx.DisplayName(catalog).c_str());
  }
  std::printf("     %.1f ms wall, %llu new optimizer calls, %llu new INUM "
              "populations\n\n",
              ms, static_cast<unsigned long long>(new_calls),
              static_cast<unsigned long long>(new_populates));
}

}  // namespace

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  Database db = BuildSdssDatabase(config);
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 16, /*seed=*/42);
  Designer designer(db);
  DesignSession session(designer);
  session.SetWorkload(workload);

  double data_pages = 0.0;
  for (TableId t = 0; t < db.catalog().num_tables(); ++t) {
    data_pages += db.stats(t).HeapPages(db.catalog().table(t));
  }

  // --- Step 1: the tool proposes ---
  std::printf("Step 1 — initial recommendation (budget = 1.0x data size):\n");
  DesignConstraints initial;
  initial.storage_budget_pages = data_pages;
  session.SetConstraints(initial);
  uint64_t calls0 = session.backend_optimizer_calls();
  uint64_t pops0 = session.inum_populate_count();
  auto t0 = std::chrono::steady_clock::now();
  auto rec = session.Recommend();
  double initial_ms = MillisSince(t0);
  if (!rec.ok()) {
    std::printf("recommendation failed: %s\n",
                rec.status().ToString().c_str());
    return 1;
  }
  PrintRecommendation(db.catalog(), session, rec.value(), initial_ms,
                      session.backend_optimizer_calls() - calls0,
                      session.inum_populate_count() - pops0);
  session.SaveSnapshot("initial");

  // --- Step 2: the DBA reacts — veto one index, pin another ---
  // She vetoes the widest recommended index (operational concerns) and
  // pins the narrowest one (she trusts it from experience).
  const auto& indexes = rec.value().indexes;
  if (indexes.empty()) {
    std::printf("nothing recommended under this budget; nothing to refine\n");
    return 0;
  }
  IndexDef widest = indexes.front();
  IndexDef narrowest = indexes.front();
  for (const IndexDef& idx : indexes) {
    if (idx.columns.size() > widest.columns.size()) widest = idx;
    if (idx.columns.size() < narrowest.columns.size()) narrowest = idx;
  }
  ConstraintDelta dba_edit;
  dba_edit.veto.push_back(widest);
  if (!(narrowest == widest)) dba_edit.pin.push_back(narrowest);
  std::printf("Step 2 — DBA reacts: %s\n",
              dba_edit.Describe(db.catalog()).c_str());

  calls0 = session.backend_optimizer_calls();
  pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  auto refined = session.Refine(dba_edit);
  double refine_ms = MillisSince(t0);
  if (!refined.ok()) {
    std::printf("refine failed: %s\n", refined.status().ToString().c_str());
    return 1;
  }
  PrintRecommendation(db.catalog(), session, refined.value(), refine_ms,
                      session.backend_optimizer_calls() - calls0,
                      session.inum_populate_count() - pops0);
  std::printf("  refinement ran %.0fx faster than the initial recommend "
              "(INUM cache + atom matrix reused)\n\n",
              initial_ms / std::max(0.001, refine_ms));

  // --- Step 3: the budget tightens; a per-table cap lands ---
  ConstraintDelta ops_edit;
  ops_edit.storage_budget_pages = 0.4 * data_pages;
  TableId photo = db.catalog().FindTable(kPhotoObj);
  ops_edit.table_caps[photo] = 2;
  std::printf("Step 3 — operations pushes back: %s\n",
              ops_edit.Describe(db.catalog()).c_str());
  calls0 = session.backend_optimizer_calls();
  pops0 = session.inum_populate_count();
  t0 = std::chrono::steady_clock::now();
  auto tightened = session.Refine(ops_edit);
  if (!tightened.ok()) {
    std::printf("refine failed: %s\n", tightened.status().ToString().c_str());
    return 1;
  }
  PrintRecommendation(db.catalog(), session, tightened.value(),
                      MillisSince(t0),
                      session.backend_optimizer_calls() - calls0,
                      session.inum_populate_count() - pops0);
  session.SaveSnapshot("constrained");

  // --- Step 4: compare the saved snapshots, then undo ---
  std::printf("Step 4 — snapshots + undo:\n");
  for (const char* name : {"initial", "constrained"}) {
    auto report = session.CompareSnapshot(name, workload);
    if (report.ok()) {
      std::printf("  snapshot %-12s avg benefit %.1f%%\n", name,
                  report.value().average_benefit() * 100.0);
    }
  }
  session.Undo();
  std::printf("  after undo: %zu indexes in the design (refine is one "
              "undoable step)\n",
              session.design().indexes().size());
  session.Redo();

  // --- Step 5: the session survives a restart ---
  const char* path = "/tmp/dbdesign_scenario1_session.json";
  Status saved = session.SaveToFile(path);
  std::printf("\nStep 5 — persistence: save %s (%s)\n", path,
              saved.ok() ? "ok" : saved.ToString().c_str());
  DesignSession resumed(designer);
  Status loaded = resumed.LoadFromFile(path);
  std::printf("  resumed session: %s — %zu queries, %zu snapshots, "
              "%zu pins, design has %zu indexes\n",
              loaded.ok() ? "ok" : loaded.ToString().c_str(),
              resumed.workload().size(), resumed.SnapshotNames().size(),
              resumed.constraints().pinned_indexes.size(),
              resumed.design().indexes().size());

  // --- The action log reads like a script of the whole conversation ---
  std::printf("\nSession log:\n");
  for (const std::string& entry : session.log()) {
    std::printf("  %s\n", entry.c_str());
  }
  return 0;
}
