// Demonstration scenario #1 (paper §4): interactive what-if design.
//
// "The user provides the query workload and the original physical
//  schema. Then, she creates several what-if partitions and indexes
//  using the tool's interface. Now, the tool presents the benefits from
//  using the new physical design for the particular workload. The user
//  can examine interactions between the what-if indexes as visualized
//  by the Index Interaction component and save the rewritten queries
//  for the new table partitions."
//
//   $ ./build/examples/scenario1_interactive

#include <cstdio>

#include "autopart/autopart.h"
#include "core/designer.h"
#include "core/report.h"
#include "sql/binder.h"
#include "workload/queries.h"
#include "workload/sdss.h"

using namespace dbdesign;

int main() {
  SdssConfig config;
  config.photoobj_rows = 20000;
  Database db = BuildSdssDatabase(config);
  Workload workload =
      GenerateWorkload(db, TemplateMix::OfflineDefault(), 10, /*seed=*/42);
  Designer designer(db);

  TableId photo = db.catalog().FindTable(kPhotoObj);
  TableId spec = db.catalog().FindTable(kSpecObj);
  const TableDef& pdef = db.catalog().table(photo);

  // --- The DBA proposes what-if indexes through the interface ---
  std::printf("DBA creates 4 what-if indexes and 1 what-if partitioning...\n");
  std::vector<IndexDef> manual = {
      {photo, {pdef.FindColumn("ra"), pdef.FindColumn("dec")}, false},
      {photo, {pdef.FindColumn("ra")}, false},
      {photo, {pdef.FindColumn("objid")}, false},
      {spec, {db.catalog().table(spec).FindColumn("bestobjid")}, false},
  };
  PhysicalDesign proposal;
  for (const IndexDef& idx : manual) proposal.AddIndex(idx);

  // A what-if vertical partitioning of photoobj: hot columns split out.
  VerticalFragment hot;
  for (const char* name : {"objid", "ra", "dec", "type", "psfmag_r"}) {
    hot.columns.push_back(pdef.FindColumn(name));
  }
  std::sort(hot.columns.begin(), hot.columns.end());
  VerticalFragment cold;
  for (ColumnId c = 0; c < pdef.num_columns(); ++c) {
    if (!hot.Covers(c)) cold.columns.push_back(c);
  }
  VerticalPartitioning vp;
  vp.table = photo;
  vp.fragments = {hot, cold};
  proposal.SetVerticalPartitioning(vp);

  // --- Benefit panel (the Figure 3-style view) ---
  BenefitReport report = designer.EvaluateDesign(workload, proposal);
  std::printf("\n%s\n",
              RenderBenefitPanel(db.catalog(), workload, report).c_str());

  // --- Index interaction visualization (Figure 2) ---
  std::printf("Analyzing index interactions...\n\n");
  InteractionGraph graph = designer.AnalyzeInteractions(workload, manual);
  std::printf("%s\n", graph.ToAscii().c_str());
  std::printf("The demo GUI lets the user cut the display down to the "
              "strongest interactions:\n\n");
  graph.SetDisplayedEdges(2);
  std::printf("%s\n", graph.ToAscii().c_str());
  std::printf("Graphviz rendering of the full graph:\n%s\n",
              graph.ToDot().c_str());

  // --- Save the rewritten queries for the new table partitions ---
  std::printf("Rewritten queries for the what-if partitions:\n");
  AutoPartAdvisor autopart(db);
  for (size_t i = 0; i < 3 && i < workload.size(); ++i) {
    std::printf("  q%zu: %s\n", i,
                autopart.RewriteQuery(workload.queries[i], proposal).c_str());
  }

  // --- What-if join control ---
  std::printf("\nJoin-method exploration on a join query:\n");
  auto join_q = ParseAndBind(
      db.catalog(),
      "SELECT p.objid, s.z FROM photoobj p JOIN specobj s "
      "ON p.objid = s.bestobjid WHERE s.z > 0.3");
  WhatIfOptimizer& whatif = designer.whatif();
  for (const IndexDef& idx : manual) whatif.CreateHypotheticalIndex(idx);
  struct KnobCase {
    const char* name;
    bool hash, merge, nl, inl;
  } cases[] = {
      {"all enabled", true, true, true, true},
      {"hash join off", false, true, true, true},
      {"merge join off", true, false, true, true},
      {"only nested loops", false, false, true, false},
  };
  for (const KnobCase& kc : cases) {
    whatif.knobs().enable_hashjoin = kc.hash;
    whatif.knobs().enable_mergejoin = kc.merge;
    whatif.knobs().enable_nestloop = kc.nl;
    whatif.knobs().enable_indexnestloop = kc.inl;
    PlanResult r = whatif.Plan(join_q.value());
    const char* method = "?";
    std::function<void(const PlanNode&)> find = [&](const PlanNode& n) {
      switch (n.type) {
        case PlanNodeType::kHashJoin: method = "HashJoin"; break;
        case PlanNodeType::kMergeJoin: method = "MergeJoin"; break;
        case PlanNodeType::kNestLoopJoin: method = "NestLoop"; break;
        case PlanNodeType::kIndexNestLoopJoin: method = "IndexNestLoop"; break;
        default: break;
      }
      for (const auto& c : n.children) find(*c);
    };
    find(*r.root);
    std::printf("  %-18s -> %-14s (cost %.1f)\n", kc.name, method, r.cost);
  }
  return 0;
}
